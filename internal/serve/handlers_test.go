package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/model"
	"twocs/internal/telemetry"
)

// sharedAnalyzer builds the standard BERT-baseline analyzer once for
// the whole test binary; it is concurrency-safe after construction.
var sharedAnalyzer = sync.OnceValues(func() (*core.Analyzer, error) {
	e, err := model.LookupZoo("BERT")
	if err != nil {
		return nil, err
	}
	return core.NewAnalyzer(hw.MI210Cluster(1, 0), e.Config, 4)
})

func testServer(t *testing.T, cfg Config) (*Server, *telemetry.Collector, *httptest.Server) {
	t.Helper()
	a, err := sharedAnalyzer()
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	s := New(a, cfg, col, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, col, ts
}

const smallStudy = `{"h":[1024],"sl":[1024],"tp":[4,8],"flopbw":[1],"target_fraction":0.5}`

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func counter(t *testing.T, col *telemetry.Collector, name string) int64 {
	t.Helper()
	v, _ := col.Snapshot().Counter(name)
	return v
}

// TestStudyCacheHit: the acceptance criterion — an identical second
// request is served from cache, byte-identical, with the hit counter
// incremented and the verdict in the response header.
func TestStudyCacheHit(t *testing.T) {
	s, col, ts := testServer(t, DefaultConfig())
	r1, b1 := postJSON(t, ts.URL+"/v1/study", smallStudy)
	if r1.StatusCode != 200 {
		t.Fatalf("first study: %d %s", r1.StatusCode, b1)
	}
	if v := r1.Header.Get("X-Twocsd-Cache"); v != "miss" {
		t.Fatalf("first request cache verdict %q", v)
	}
	// Equivalent but permuted/defaulted spec must hit the same entry.
	r2, b2 := postJSON(t, ts.URL+"/v1/study", `{"tp":[8,4,8],"sl":[1024],"h":[1024],"b":1,"flopbw":[1]}`)
	if r2.StatusCode != 200 {
		t.Fatalf("second study: %d %s", r2.StatusCode, b2)
	}
	if v := r2.Header.Get("X-Twocsd-Cache"); v != "hit" {
		t.Fatalf("second request cache verdict %q", v)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached body differs from computed body")
	}
	if h := counter(t, col, "serve.cache.hit"); h != 1 {
		t.Fatalf("cache hit counter = %d", h)
	}
	if m := counter(t, col, "serve.cache.miss"); m != 1 {
		t.Fatalf("cache miss counter = %d", m)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries", s.CacheLen())
	}

	var resp StudyResponse
	if err := json.Unmarshal(b1, &resp); err != nil {
		t.Fatalf("study body is not JSON: %v", err)
	}
	if len(resp.Scenarios) != 1 || resp.Points != 2 {
		t.Fatalf("unexpected study shape: %d scenarios, %d points", len(resp.Scenarios), resp.Points)
	}
	sc := resp.Scenarios[0]
	if len(sc.Points) != 2 || len(sc.Crossover) != 1 {
		t.Fatalf("scenario shape: %d points, %d crossover rows", len(sc.Points), len(sc.Crossover))
	}
	if resp.Spec.TargetFraction < 0.49 || resp.Spec.TargetFraction > 0.51 {
		t.Fatalf("normalized spec not echoed: %+v", resp.Spec)
	}
}

// TestStudyConcurrentIdentical: two identical requests in flight
// together produce one computation (singleflight), byte-identical
// bodies, and a hit+miss counter pair.
func TestStudyConcurrentIdentical(t *testing.T) {
	_, col, ts := testServer(t, DefaultConfig())
	spec := `{"h":[2048],"sl":[1024],"tp":[4,8,16],"flopbw":[1,2]}`
	var wg sync.WaitGroup
	bodies := make([][]byte, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSON(t, ts.URL+"/v1/study", spec)
			if resp.StatusCode != 200 {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, b)
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("concurrent identical requests returned different bytes")
	}
	if m := counter(t, col, "serve.cache.miss"); m != 1 {
		t.Fatalf("miss counter = %d, want 1 (one computation)", m)
	}
	if h := counter(t, col, "serve.cache.hit"); h != 1 {
		t.Fatalf("hit counter = %d, want 1 (follower or cached)", h)
	}
}

func TestStudyRejections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxStudyPoints = 4
	_, col, ts := testServer(t, cfg)

	get, err := http.Get(ts.URL + "/v1/study")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET study: %d", get.StatusCode)
	}

	cases := []struct {
		body string
		want int
	}{
		{`not json`, 400},
		{`{"hss":[1024]}`, 400},                // unknown field
		{`{"h":[0]}`, 400},                     // invalid axis value
		{`{"target_fraction":1.5}`, 400},       // target out of range
		{`{"h":[1024],"sl":[1024]} junk`, 400}, // trailing garbage
		{`{}`, 413},                            // full default grid > MaxStudyPoints
	}
	for _, c := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/study", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %q: status %d (%s), want %d", c.body, resp.StatusCode, b, c.want)
		}
	}
	if rej := counter(t, col, "serve.requests.rejected"); rej != int64(len(cases)) {
		t.Fatalf("rejected counter = %d, want %d", rej, len(cases))
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rate = 1e-9 // effectively never refills
	cfg.Burst = 1
	_, col, ts := testServer(t, cfg)
	r1, _ := postJSON(t, ts.URL+"/v1/study", smallStudy)
	if r1.StatusCode != 200 {
		t.Fatalf("first request: %d", r1.StatusCode)
	}
	r2, _ := postJSON(t, ts.URL+"/v1/study", smallStudy)
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rej := counter(t, col, "serve.admission.rejected"); rej != 1 {
		t.Fatalf("admission.rejected = %d", rej)
	}
}

// sweepTrailer is the NDJSON trailer line's schema.
type sweepTrailer struct {
	Trailer  bool   `json:"trailer"`
	Rows     int64  `json:"rows"`
	Total    int64  `json:"total"`
	Canceled int64  `json:"canceled"`
	Complete bool   `json:"complete"`
	Reason   string `json:"reason"`
}

// scanSweep validates every line and returns (data lines, canceled
// lines, trailer).
func scanSweep(t *testing.T, body io.Reader) (int64, int64, sweepTrailer) {
	t.Helper()
	var lines, canceled int64
	var tr sweepTrailer
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if !json.Valid(line) {
			t.Fatalf("invalid JSON line: %s", line)
		}
		if strings.Contains(string(line), `"trailer":true`) {
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatal(err)
			}
			continue
		}
		lines++
		if strings.Contains(string(line), `"canceled":true`) {
			canceled++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !tr.Trailer {
		t.Fatal("stream ended without a trailer")
	}
	return lines, canceled, tr
}

func TestSweepStreams(t *testing.T) {
	_, _, ts := testServer(t, DefaultConfig())
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"h":[1024,2048],"sl":[1024],"tp":[4,8],"flopbw":[1,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines, canceled, tr := scanSweep(t, resp.Body)
	if !tr.Complete || tr.Reason != "" {
		t.Fatalf("complete sweep has trailer %+v", tr)
	}
	if lines != 8 || tr.Rows != 8 || tr.Total != 8 {
		t.Fatalf("rows: lines=%d trailer=%+v, want 8", lines, tr)
	}
	if canceled != 0 || tr.Canceled != 0 {
		t.Fatalf("complete sweep reports canceled rows: %d/%d", canceled, tr.Canceled)
	}
}

// TestSweepDeadlinePartial: a sweep whose deadline fires still returns
// a well-formed artifact — full grid shape, every line valid JSON,
// canceled rows marked and counted, trailer naming the deadline.
func TestSweepDeadlinePartial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SweepTimeout = time.Nanosecond
	_, col, ts := testServer(t, cfg)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"h":[1024,2048],"sl":[1024],"tp":[4,8],"flopbw":[1,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	lines, canceled, tr := scanSweep(t, resp.Body)
	if tr.Complete {
		t.Fatalf("deadline sweep claims completeness: %+v", tr)
	}
	if tr.Reason != "deadline exceeded" && tr.Reason != "canceled" {
		t.Fatalf("trailer reason %q", tr.Reason)
	}
	if lines != tr.Total || tr.Rows != tr.Total {
		t.Fatalf("partial sweep lost grid shape: lines=%d trailer=%+v", lines, tr)
	}
	if canceled != tr.Canceled || canceled == 0 {
		t.Fatalf("canceled lines=%d, trailer=%d", canceled, tr.Canceled)
	}
	if p := counter(t, col, "serve.sweep.partial"); p != 1 {
		t.Fatalf("sweep.partial counter = %d", p)
	}
}

func TestSweepBusy(t *testing.T) {
	s, col, ts := testServer(t, DefaultConfig())
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", `{"h":[1024],"sl":[1024],"tp":[4]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy sweep: %d, want 503", resp.StatusCode)
	}
	if b := counter(t, col, "serve.sweep.busy"); b != 1 {
		t.Fatalf("sweep.busy counter = %d", b)
	}
}

func TestIndexAndDebugPlane(t *testing.T) {
	_, _, ts := testServer(t, DefaultConfig())
	for path, want := range map[string]string{
		"/":        "/v1/study",
		"/healthz": "ok",
		"/metrics": "twocs_",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(b), want) {
			t.Errorf("%s: status %d, body lacks %q", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path: %d, want 404", resp.StatusCode)
	}
}
