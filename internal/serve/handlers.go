package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"twocs/internal/core"
	"twocs/internal/stream"
)

// StudyResponse is the POST /v1/study body: the normalized spec echoed
// back (so the caller sees what defaults filled in), then per-scenario
// comm-fraction points and crossover tables. The rendering is fully
// deterministic — same normalized spec, same bytes — which is what
// makes the result cacheable and the cache testable by byte equality.
type StudyResponse struct {
	Spec      StudyRequest    `json:"spec"`
	Points    int             `json:"points"`
	Scenarios []StudyScenario `json:"scenarios"`
}

// StudyScenario is one hardware-evolution slice of a study response.
type StudyScenario struct {
	Evo       string           `json:"evo"`
	FlopVsBW  float64          `json:"flopbw"`
	Points    []StudyPoint     `json:"points"`
	Crossover []core.Crossover `json:"crossover"`
}

// StudyPoint is one grid sample's serialized-communication fraction.
type StudyPoint struct {
	H        int     `json:"h"`
	SL       int     `json:"sl"`
	B        int     `json:"b"`
	TP       int     `json:"tp"`
	Fraction float64 `json:"comm_frac"`
}

// admit runs the two admission gates; on rejection it has written the
// response. The caller must `defer s.gate.release()` when admitted.
func (s *Server) admit(w http.ResponseWriter) bool {
	if !s.bucket.allow(time.Now()) {
		s.col.Count("serve.admission.rejected", 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return false
	}
	if !s.gate.tryAcquire() {
		s.col.Count("serve.admission.saturated", 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at max in-flight requests", http.StatusServiceUnavailable)
		return false
	}
	return true
}

// fail maps a computation error onto an HTTP status: deadline → 504,
// client-side cancellation → 503 (the waiter left; nothing better to
// say), anything else → 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.col.Count("serve.errors", 1)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "computation deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, "request canceled", http.StatusServiceUnavailable)
	default:
		http.Error(w, "analysis failed: "+err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) reject(w http.ResponseWriter, status int, err error) {
	s.col.Count("serve.requests.rejected", 1)
	http.Error(w, err.Error(), status)
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	defer s.col.Start("serve.study").End()
	s.col.Count("serve.study.requests", 1)
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON StudyRequest", http.StatusMethodNotAllowed)
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.gate.release()

	var req StudyRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(s.cfg.DefaultModel); err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	if pts := req.Points(); pts > s.cfg.MaxStudyPoints {
		s.reject(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("study grid has %d points, limit %d (narrow an axis or use /v1/sweep)", pts, s.cfg.MaxStudyPoints))
		return
	}

	key := req.cacheKey()
	if body, ok := s.cache.get(key); ok {
		s.col.Count("serve.cache.hit", 1)
		s.writeStudy(w, key, "hit", body)
		return
	}
	// Miss: compute once per key no matter how many identical requests
	// are in flight. The leader fills the cache and counts the miss;
	// followers are cache hits in every observable way — same bytes,
	// near-zero marginal cost.
	body, leader, err := s.flight.do(r.Context(), key, func() ([]byte, error) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StudyTimeout)
		defer cancel()
		return s.computeStudy(ctx, req)
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	if leader {
		s.col.Count("serve.cache.miss", 1)
		s.cache.put(key, body)
		s.writeStudy(w, key, "miss", body)
		return
	}
	s.col.Count("serve.cache.hit", 1)
	s.writeStudy(w, key, "hit", body)
}

func (s *Server) writeStudy(w http.ResponseWriter, key, verdict string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Twocsd-Cache", verdict)
	w.Header().Set("X-Twocsd-Request", key)
	_, _ = w.Write(body)
}

// computeStudy runs the strict evolution grid under ctx and renders the
// deterministic response body.
func (s *Server) computeStudy(ctx context.Context, req StudyRequest) ([]byte, error) {
	an, err := s.analyzerFor(req.Model)
	if err != nil {
		return nil, err
	}
	evos := req.Evolutions()
	grid, err := an.SerializedEvolutionGridCtx(ctx, req.Hs, req.SLs, req.TPs, req.B, evos)
	if err != nil {
		return nil, err
	}
	resp := StudyResponse{Spec: req, Scenarios: make([]StudyScenario, len(grid))}
	for i, points := range grid {
		sc := StudyScenario{
			Evo:      evos[i].Name,
			FlopVsBW: evos[i].FlopVsBW(),
			Points:   make([]StudyPoint, len(points)),
		}
		for j, p := range points {
			sc.Points[j] = StudyPoint{H: p.H, SL: p.SL, B: p.B, TP: p.TP, Fraction: p.Fraction}
		}
		if sc.Crossover, err = core.CrossoverTable(points, req.TargetFraction); err != nil {
			return nil, err
		}
		resp.Points += len(points)
		resp.Scenarios[i] = sc
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	defer s.col.Start("serve.sweep").End()
	s.col.Count("serve.sweep.requests", 1)
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON SweepRequest", http.StatusMethodNotAllowed)
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.gate.release()

	var req SweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(s.cfg.DefaultModel); err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	if pts := req.Points(); pts > s.cfg.MaxSweepPoints {
		s.reject(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("sweep grid has %d points, limit %d", pts, s.cfg.MaxSweepPoints))
		return
	}
	if req.Ranged() {
		// Resolve the exact row count before any bytes go out: an
		// out-of-grid shard must be a 400 the coordinator can act on, not
		// a 200 that dies mid-stream.
		total, err := req.RowCount()
		if err != nil {
			s.reject(w, http.StatusBadRequest, err)
			return
		}
		if req.Hi > total {
			s.reject(w, http.StatusBadRequest,
				fmt.Errorf("shard range [%d,%d) exceeds grid of %d rows", req.Lo, req.Hi, total))
			return
		}
	}
	an, err := s.analyzerFor(req.Model)
	if err != nil {
		s.fail(w, err)
		return
	}
	// One streaming sweep at a time: the process-wide progress tracker
	// describes exactly one stream, and serializing here is what makes
	// /progress during a sweep agree with that sweep's trailer.
	if !s.sweepMu.TryLock() {
		s.col.Count("serve.sweep.busy", 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "a sweep is already streaming (follow it on /progress)", http.StatusServiceUnavailable)
		return
	}
	defer s.sweepMu.Unlock()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SweepTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Twocsd-Request", req.cacheKey())
	sink := stream.NewHTTPNDJSON(w, s.cfg.FlushEvery)
	if req.Ranged() {
		// Shard streams are strict, not partial: an interrupted shard ends
		// after its contiguous prefix with a trailer whose Rows tells the
		// coordinator exactly where to resume (lo+Rows). Back-filled
		// canceled rows would be indistinguishable from computed ones at
		// the byte level and poison the resumed re-fetch.
		if err := an.StreamEvolutionGridRangeCtx(ctx, req.Hs, req.SLs, req.TPs, req.B, req.Evolutions(), req.Lo, req.Hi, sink); err != nil {
			s.col.Count("serve.sweep.partial", 1)
		}
		return
	}
	// The partial entry point means cancellation mid-stream (client gone,
	// deadline, SIGTERM draining the server ctx) still yields a
	// well-formed artifact: full grid shape, canceled rows as nulls, a
	// trailer that says what happened. Status is already 200 by the time
	// anything can fail — the trailer is the error channel, which is why
	// the smoke tests machine-check it.
	if err := an.StreamEvolutionGridPartialCtx(ctx, req.Hs, req.SLs, req.TPs, req.B, req.Evolutions(), sink); err != nil {
		s.col.Count("serve.sweep.partial", 1)
	}
}

// PlanResponse is the POST /v1/plan body: the normalized sweep spec
// echoed back and the exact row count its grid streams — what a fan-out
// coordinator needs to partition the index space into shards without
// re-implementing the enumerator's TP-divisibility skips.
type PlanResponse struct {
	Spec   SweepRequest `json:"spec"`
	Points int64        `json:"points"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	defer s.col.Start("serve.plan").End()
	s.col.Count("serve.plan.requests", 1)
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON SweepRequest", http.StatusMethodNotAllowed)
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.gate.release()

	var req SweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(s.cfg.DefaultModel); err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	if req.Ranged() || req.Lo != 0 {
		s.reject(w, http.StatusBadRequest,
			fmt.Errorf("plan takes a whole grid, not a shard range"))
		return
	}
	total, err := req.RowCount()
	if err != nil {
		s.reject(w, http.StatusBadRequest, err)
		return
	}
	body, err := json.Marshal(PlanResponse{Spec: req, Points: total})
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Twocsd-Request", req.cacheKey())
	_, _ = w.Write(append(body, '\n'))
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "twocsd analysis daemon\n\n"+
		"  POST /v1/study  {\"h\":[...],\"sl\":[...],\"tp\":[...],\"b\":1,\"flopbw\":[...],\"model\":\"BERT\",\"target_fraction\":0.5}\n"+
		"                  comm-fraction points + crossover tables as JSON (cached)\n"+
		"  POST /v1/sweep  {\"h\":[...],\"sl\":[...],\"tp\":[...],\"b\":1,\"flopbw\":[...],\"model\":\"BERT\",\"lo\":0,\"hi\":0}\n"+
		"                  grid streamed as NDJSON with a trailer row; lo/hi select\n"+
		"                  a shard of global row indices [lo,hi) for fan-out clients\n"+
		"  POST /v1/plan   same spec; echoes the normalized spec + exact row count\n\n"+
		"  /healthz /metrics /metrics.json /progress /debug/pprof/  observability plane\n")
}
