// Package serve is the twocsd analysis service: HTTP handlers that
// answer model+hardware+parallelism study and sweep queries over one
// long-lived core.Analyzer. The daemon exists to amortize what the CLI
// pays per invocation — the baseline profile, the calibrated operator
// model, and the three process-wide compiled caches (dist.programcache,
// opmodel.projcache, model.opscache) — across every request of a
// long-running process: model once, query forever.
//
// The package is glue with sharp contracts, not new math: requests
// decode strictly (unknown fields are errors), normalize to a canonical
// form, and hash into a bounded LRU result cache; admission is a token
// bucket plus an in-flight cap; every request runs under a deadline
// threaded through the same MapCtx/StreamCtx machinery the CLI uses;
// and per-request spans/counters land in the process collector the
// /metrics endpoints already serve.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/model"
)

// GridSpec selects the design-space slice a request runs over. Every
// field is optional; zero values take the paper's Table 3 defaults.
// Axes are normalized (sorted ascending, deduplicated) before hashing,
// so permuted but equivalent requests share one cache entry.
type GridSpec struct {
	// Hs, SLs, TPs are the hidden-dimension, sequence-length, and
	// tensor-parallel-degree axes (defaults: Table 3).
	Hs  []int `json:"h,omitempty"`
	SLs []int `json:"sl,omitempty"`
	TPs []int `json:"tp,omitempty"`
	// B is the batch size (default 1).
	B int `json:"b,omitempty"`
	// FlopVsBW lists the hardware-evolution scenarios as compute-vs-
	// network scaling ratios (default: the paper's 1, 2, 4).
	FlopVsBW []float64 `json:"flopbw,omitempty"`
	// Model names the zoo baseline the analyzer calibrates from
	// (default: the server's configured model, normally BERT). The grid
	// itself is model-independent — FutureConfig derives each point's
	// architecture from H — but the calibrated operator model and
	// baseline profile the projections stand on are per-model.
	Model string `json:"model,omitempty"`
}

// StudyRequest is the POST /v1/study body: a grid plus the crossover
// target. The response materializes per-scenario comm-fraction points
// and crossover tables, so its grid is bounded tighter than a sweep's.
type StudyRequest struct {
	GridSpec
	// TargetFraction is the comm fraction the crossover tables solve
	// for (default 0.5: communication overtakes computation).
	TargetFraction float64 `json:"target_fraction,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: a grid streamed back as
// NDJSON rows under the stream.Trailer contract. Lo/Hi optionally
// select one shard of the grid — rows with global index in [Lo, Hi) —
// which is how a fan-out coordinator splits a sweep across replicas.
// Only sweeps understand shards; a StudyRequest carrying "lo" is a 400
// (strict decoding), not a silently ignored field.
type SweepRequest struct {
	GridSpec
	// Lo and Hi bound the shard's global row-index range [Lo, Hi).
	// Hi == 0 (the zero value) means the full grid.
	Lo int64 `json:"lo,omitempty"`
	Hi int64 `json:"hi,omitempty"`
}

// Ranged reports whether the request asks for a shard rather than the
// full grid.
func (r SweepRequest) Ranged() bool { return r.Hi > 0 }

// maxAxisValue bounds each axis entry to something the op-graph builder
// can actually shape; it exists to fail absurd requests fast, not to be
// a tight model-validity check (the analyzer still validates configs).
const maxAxisValue = 1 << 24

func normalizeAxis(name string, vals, def []int) ([]int, error) {
	if len(vals) == 0 {
		return def, nil
	}
	out := slices.Clone(vals)
	slices.Sort(out)
	out = slices.Compact(out)
	for _, v := range out {
		if v <= 0 || v > maxAxisValue {
			return nil, fmt.Errorf("axis %s value %d outside [1, %d]", name, v, maxAxisValue)
		}
	}
	return out, nil
}

// ZooModelNames returns the valid GridSpec.Model values in zoo order —
// the list a rejection names so a typo'd model is a self-correcting 400.
func ZooModelNames() []string {
	zoo := model.Zoo()
	names := make([]string, len(zoo))
	for i, e := range zoo {
		names[i] = e.Config.Name
	}
	return names
}

// normalize applies defaults and canonicalizes the axes in place;
// defModel fills an empty Model before it is validated against the zoo.
func (g *GridSpec) normalize(defModel string) error {
	var err error
	if g.Hs, err = normalizeAxis("h", g.Hs, core.Table3Hs()); err != nil {
		return err
	}
	if g.SLs, err = normalizeAxis("sl", g.SLs, core.Table3SLs()); err != nil {
		return err
	}
	if g.TPs, err = normalizeAxis("tp", g.TPs, core.Table3TPs()); err != nil {
		return err
	}
	if g.B == 0 {
		g.B = 1
	}
	if g.B < 0 || g.B > maxAxisValue {
		return fmt.Errorf("batch %d outside [1, %d]", g.B, maxAxisValue)
	}
	if len(g.FlopVsBW) == 0 {
		g.FlopVsBW = []float64{1, 2, 4}
	}
	ratios := slices.Clone(g.FlopVsBW)
	slices.Sort(ratios)
	ratios = slices.Compact(ratios)
	for _, r := range ratios {
		if !(r >= 1) || r > 1e6 {
			return fmt.Errorf("flopbw ratio %g outside [1, 1e6]", r)
		}
	}
	g.FlopVsBW = ratios
	if g.Model == "" {
		g.Model = defModel
	}
	if _, err := model.LookupZoo(g.Model); err != nil {
		return fmt.Errorf("unknown model %q (valid: %s)", g.Model, strings.Join(ZooModelNames(), ", "))
	}
	return nil
}

// Points returns the grid cardinality upper bound (TP degrees that do
// not divide a configuration are skipped at enumeration, so the actual
// row count can be lower).
func (g GridSpec) Points() int64 {
	return int64(len(g.Hs)) * int64(len(g.SLs)) * int64(len(g.TPs)) * int64(len(g.FlopVsBW))
}

// Evolutions expands the flop-vs-bw ratios into hardware scenarios.
// Ratio 1 maps to the identity scenario ("1x"), matching PaperScenarios
// and the CLI — which is what keeps a daemon-streamed grid
// byte-identical to a locally streamed one.
func (g GridSpec) Evolutions() []hw.Evolution {
	evos := make([]hw.Evolution, len(g.FlopVsBW))
	for i, r := range g.FlopVsBW {
		evos[i] = hw.RatioScenario(r)
	}
	return evos
}

// RowCount returns the exact number of rows the normalized grid
// streams — Points() minus the TP-indivisible skips. This is the
// denominator a shard planner partitions.
func (g GridSpec) RowCount() (int64, error) {
	return core.GridRowCount(g.Hs, g.SLs, g.TPs, g.B, len(g.FlopVsBW))
}

// normalize applies defaults and canonicalizes the request in place.
func (r *StudyRequest) normalize(defModel string) error {
	if err := r.GridSpec.normalize(defModel); err != nil {
		return err
	}
	switch {
	case r.TargetFraction < 0 || r.TargetFraction >= 1:
		return fmt.Errorf("target_fraction %g outside (0,1)", r.TargetFraction)
	case r.TargetFraction > 0:
		// explicitly given, in range
	default:
		r.TargetFraction = 0.5
	}
	return nil
}

// normalize canonicalizes the sweep request in place and validates the
// shard range's self-consistent half (Lo/Hi sanity; whether Hi fits the
// grid needs the enumerated row count, which the handler checks).
func (r *SweepRequest) normalize(defModel string) error {
	if err := r.GridSpec.normalize(defModel); err != nil {
		return err
	}
	if r.Lo < 0 || r.Hi < 0 {
		return fmt.Errorf("shard range [%d,%d) must be non-negative", r.Lo, r.Hi)
	}
	if r.Ranged() && r.Lo >= r.Hi {
		return fmt.Errorf("shard range [%d,%d) is empty", r.Lo, r.Hi)
	}
	if !r.Ranged() && r.Lo != 0 {
		return fmt.Errorf("shard lo=%d without hi", r.Lo)
	}
	return nil
}

// Normalize canonicalizes the request exactly as the daemon will,
// defaulting an empty Model to BERT (DefaultConfig's model). Clients —
// the fan-out coordinator above all — normalize before deriving shard
// requests so every shard hashes and streams against one canonical
// spec.
func (r *SweepRequest) Normalize() error {
	return r.normalize(DefaultConfig().DefaultModel)
}

// decodeStrict decodes exactly one JSON value from body into dst,
// rejecting unknown fields and trailing garbage — a typo'd axis name
// must be a 400, not a silently defaulted full-grid run.
func decodeStrict(body io.Reader, dst any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data after the JSON object")
	}
	return nil
}
