package serve

import (
	"net/http"
	"sync"
	"time"

	"twocs/internal/core"
	"twocs/internal/model"
	"twocs/internal/telemetry"
)

// Config sizes the daemon's protection mechanisms. The zero value is
// not useful; start from DefaultConfig.
type Config struct {
	// CacheEntries and CacheBytes bound the study result cache
	// (non-positive disables that bound; both non-positive disables
	// caching).
	CacheEntries int
	CacheBytes   int64
	// Rate and Burst shape the admission token bucket in requests per
	// second; Rate <= 0 disables rate limiting.
	Rate  float64
	Burst int
	// MaxInflight caps concurrently admitted API requests.
	MaxInflight int
	// StudyTimeout and SweepTimeout bound each request's computation;
	// the deadline threads through the ctx-aware grid entry points, so
	// an expired study returns 504 and an expired sweep degrades to a
	// partial artifact with a deadline trailer.
	StudyTimeout time.Duration
	SweepTimeout time.Duration
	// MaxStudyPoints and MaxSweepPoints bound the grid cardinality a
	// single request may ask for. Studies materialize their grid, so
	// their bound is the tighter one.
	MaxStudyPoints int64
	MaxSweepPoints int64
	// FlushEvery is the sweep stream's row-granularity for flushing
	// chunked NDJSON to the client (<= 0 takes the sink's default).
	FlushEvery int64
	// DefaultModel names the zoo model a request without an explicit
	// "model" field analyzes ("" means BERT, the model the analyzer
	// passed to New was built for).
	DefaultModel string
}

// DefaultConfig returns production-shaped settings: a cache sized for
// a dashboard's hot set, admission generous enough for interactive use
// but bounded, and timeouts that keep one runaway grid from wedging
// the daemon.
func DefaultConfig() Config {
	return Config{
		CacheEntries:   256,
		CacheBytes:     64 << 20,
		Rate:           50,
		Burst:          100,
		MaxInflight:    32,
		StudyTimeout:   2 * time.Minute,
		SweepTimeout:   10 * time.Minute,
		MaxStudyPoints: 1 << 16,
		MaxSweepPoints: 1 << 24,
		FlushEvery:     256,
		DefaultModel:   "BERT",
	}
}

// Server answers study and sweep queries over one long-lived Analyzer.
// It is an http.Handler factory, not a listener owner — the caller
// (cmd/twocsd) binds the port and owns shutdown.
type Server struct {
	an      *core.Analyzer
	cfg     Config
	col     *telemetry.Collector
	sampler *telemetry.Sampler

	cache  *lruCache
	bucket *tokenBucket
	gate   inflightGate
	flight flightGroup
	// anMu guards analyzers, the lazy per-model registry: the analyzer
	// passed to New is seeded under the default model's name, other zoo
	// models are calibrated on first request and memoized. Construction
	// holds the lock — the first request for a new model pays the
	// baseline profile once, concurrent requests for it wait instead of
	// duplicating the work.
	anMu      sync.Mutex
	analyzers map[string]*core.Analyzer
	// sweepMu serializes streaming sweeps: the progress tracker is
	// process-wide, so one stream at a time is the contract that keeps
	// /progress agreeing with the trailer of the sweep it describes.
	sweepMu sync.Mutex
}

// New builds a Server over an analyzer. col and sampler may be nil
// (telemetry endpoints then serve runtime data only); when col is the
// process's active collector, the analyzer's own spans and counters
// land beside the request metrics.
func New(an *core.Analyzer, cfg Config, col *telemetry.Collector, sampler *telemetry.Sampler) *Server {
	if cfg.DefaultModel == "" {
		cfg.DefaultModel = "BERT"
	}
	return &Server{
		an:        an,
		cfg:       cfg,
		col:       col,
		sampler:   sampler,
		cache:     newLRUCache(cfg.CacheEntries, cfg.CacheBytes),
		bucket:    newTokenBucket(cfg.Rate, cfg.Burst),
		gate:      newInflightGate(cfg.MaxInflight),
		analyzers: map[string]*core.Analyzer{cfg.DefaultModel: an},
	}
}

// analyzerFor returns the memoized analyzer for a zoo model, building
// and calibrating it on first use. The name must already be validated
// (normalize checked the zoo), so an error here is a construction
// failure, not a client mistake.
func (s *Server) analyzerFor(name string) (*core.Analyzer, error) {
	s.anMu.Lock()
	defer s.anMu.Unlock()
	if a, ok := s.analyzers[name]; ok {
		return a, nil
	}
	e, err := model.LookupZoo(name)
	if err != nil {
		return nil, err
	}
	defer s.col.Start("serve.analyzer.build").End()
	a, err := core.NewAnalyzer(s.an.Cluster, e.Config, model.CalibrationTP(e.Config))
	if err != nil {
		return nil, err
	}
	a.Workers = s.an.Workers
	s.analyzers[name] = a
	s.col.Count("serve.analyzer.models", 1)
	return a, nil
}

// Handler mounts the full daemon surface on one mux: the API routes
// plus the same debug/metrics plane the CLI's -http flag serves, so a
// single scrape target covers request metrics, analyzer internals,
// runtime stats, and live sweep progress.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/v1/study", s.handleStudy)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	telemetry.RegisterDebug(mux, s.col, s.sampler)
	return mux
}

// CacheLen reports the current study-cache entry count (for tests and
// the load-test scripts).
func (s *Server) CacheLen() int { return s.cache.len() }
