package serve

import (
	"sync"
	"time"
)

// Admission control is two independent gates, both answered before any
// work is admitted so an overloaded daemon sheds load in microseconds
// instead of queuing it into memory:
//
//   - a token bucket bounds the sustained request *rate* (refill) while
//     allowing short bursts (capacity) — the shape inference-serving
//     admission policies use, because dashboards poll in bursts;
//   - an in-flight cap bounds *concurrency*: each admitted request
//     holds one slot for its lifetime, so a flood of slow sweeps cannot
//     pile up goroutines behind the analyzer.
//
// Rejections are cheap, counted, and honest: 429 with Retry-After.

// tokenBucket is a standard leaky-bucket rate limiter. The clock is a
// parameter (not time.Now) so tests drive it deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the limiter
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket returns a bucket refilling at rate tokens/second with
// the given burst capacity, initially full. rate <= 0 disables it.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// allow consumes one token if available at time now.
func (b *tokenBucket) allow(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// inflightGate is the concurrency cap: a semaphore acquired without
// blocking — admission rejects rather than queues.
type inflightGate chan struct{}

func newInflightGate(n int) inflightGate {
	if n < 1 {
		n = 1
	}
	return make(inflightGate, n)
}

// tryAcquire claims a slot if one is free; the caller must release().
func (g inflightGate) tryAcquire() bool {
	select {
	case g <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g inflightGate) release() { <-g }
