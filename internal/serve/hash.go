package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
)

// Canonical request hashing: the cache key of a request is the SHA-256
// of its *normalized* form rendered deterministically, so two requests
// asking for the same analysis — axes permuted, duplicated, defaulted
// explicitly or left out — produce the same digest and share one cache
// entry. The rendering is versioned; bump the prefix when the response
// schema changes so stale entries can never be served across a deploy.

// v2: the canonical string gained ";model=" (multi-model zoo) and the
// sweep form gained ";lo=/;hi=" (shard ranges) — v1 entries hash a
// request shape that no longer exists.
const hashVersion = "twocsd/v2"

func appendInts(b []byte, name string, vals []int) []byte {
	b = append(b, ';')
	b = append(b, name...)
	b = append(b, '=')
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return b
}

func (g GridSpec) appendCanonical(b []byte) []byte {
	b = appendInts(b, "h", g.Hs)
	b = appendInts(b, "sl", g.SLs)
	b = appendInts(b, "tp", g.TPs)
	b = append(b, ";b="...)
	b = strconv.AppendInt(b, int64(g.B), 10)
	b = append(b, ";flopbw="...)
	for i, r := range g.FlopVsBW {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendFloat(b, r, 'g', -1, 64)
	}
	b = append(b, ";model="...)
	b = append(b, g.Model...)
	return b
}

// cacheKey returns the canonical digest of a normalized study request.
func (r StudyRequest) cacheKey() string {
	b := []byte(hashVersion + "/study")
	b = r.GridSpec.appendCanonical(b)
	b = append(b, ";target="...)
	b = strconv.AppendFloat(b, r.TargetFraction, 'g', -1, 64)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// cacheKey returns the canonical digest of a normalized sweep request.
// Sweep responses are not cached (they stream), but the digest names
// the request in spans and logs — and a shard's digest is canonical
// *per shard*: the range participates, so two shards of one sweep are
// distinguishable while retries of the same shard collide.
func (r SweepRequest) cacheKey() string {
	b := []byte(hashVersion + "/sweep")
	b = r.GridSpec.appendCanonical(b)
	b = append(b, ";lo="...)
	b = strconv.AppendInt(b, r.Lo, 10)
	b = append(b, ";hi="...)
	b = strconv.AppendInt(b, r.Hi, 10)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
