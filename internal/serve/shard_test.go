package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestPlanExactPoints: /v1/plan returns the exact enumerated row count
// — the number of data lines a full sweep of the same spec streams,
// not the axis-product upper bound.
func TestPlanExactPoints(t *testing.T) {
	_, _, ts := testServer(t, DefaultConfig())
	spec := `{"h":[1024,2048],"sl":[1024],"tp":[4,8,64],"flopbw":[1,4]}`

	resp, body := postJSON(t, ts.URL+"/v1/plan", spec)
	if resp.StatusCode != 200 {
		t.Fatalf("plan: %d %s", resp.StatusCode, body)
	}
	var plan PlanResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Model != "BERT" {
		t.Fatalf("plan did not echo the defaulted model: %+v", plan.Spec)
	}
	if plan.Points >= plan.Spec.Points() {
		t.Fatalf("plan points %d should be below the axis product %d (TP=64 skips H=1024)",
			plan.Points, plan.Spec.Points())
	}

	sw, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Body.Close()
	lines, _, tr := scanSweep(t, sw.Body)
	if lines != plan.Points || tr.Total != plan.Points {
		t.Fatalf("plan says %d points, sweep streamed %d (trailer %+v)", plan.Points, lines, tr)
	}
}

// TestSweepShardsConcatIdentical: splitting the grid into [lo,hi)
// shards and concatenating the shard streams' data lines reproduces the
// full sweep's data lines byte for byte, at several shard sizes.
func TestSweepShardsConcatIdentical(t *testing.T) {
	_, _, ts := testServer(t, DefaultConfig())
	spec := `{"h":[1024,2048],"sl":[1024,2048],"tp":[4,8],"flopbw":[1,4]}`

	resp, body := postJSON(t, ts.URL+"/v1/plan", spec)
	if resp.StatusCode != 200 {
		t.Fatalf("plan: %d %s", resp.StatusCode, body)
	}
	var plan PlanResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	total := plan.Points

	fullResp, fullBody := postJSON(t, ts.URL+"/v1/sweep", spec)
	if fullResp.StatusCode != 200 {
		t.Fatalf("full sweep: %d", fullResp.StatusCode)
	}
	fullLines := bytes.Split(bytes.TrimSuffix(fullBody, []byte("\n")), []byte("\n"))
	wantRows := bytes.Join(fullLines[:len(fullLines)-1], []byte("\n"))

	for _, shardRows := range []int64{1, 3, total - 1, total} {
		var joined [][]byte
		for lo := int64(0); lo < total; lo += shardRows {
			hi := lo + shardRows
			if hi > total {
				hi = total
			}
			shardSpec := fmt.Sprintf(`{"h":[1024,2048],"sl":[1024,2048],"tp":[4,8],"flopbw":[1,4],"lo":%d,"hi":%d}`, lo, hi)
			resp, body := postJSON(t, ts.URL+"/v1/sweep", shardSpec)
			if resp.StatusCode != 200 {
				t.Fatalf("shard [%d,%d): %d %s", lo, hi, resp.StatusCode, body)
			}
			lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
			var tr sweepTrailer
			if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil || !tr.Trailer {
				t.Fatalf("shard [%d,%d) trailer: %s", lo, hi, lines[len(lines)-1])
			}
			if tr.Rows != hi-lo || tr.Total != hi-lo || !tr.Complete {
				t.Fatalf("shard [%d,%d) trailer %+v", lo, hi, tr)
			}
			joined = append(joined, lines[:len(lines)-1]...)
		}
		if !bytes.Equal(bytes.Join(joined, []byte("\n")), wantRows) {
			t.Fatalf("shardRows=%d: concatenated shards differ from the full sweep", shardRows)
		}
	}
}

// TestSweepShardValidation: malformed or out-of-grid shard ranges are
// 400s decided before any stream bytes, and /v1/study rejects shard
// fields outright.
func TestSweepShardValidation(t *testing.T) {
	_, _, ts := testServer(t, DefaultConfig())
	base := `"h":[1024],"sl":[1024],"tp":[4,8],"flopbw":[1]`

	for _, c := range []struct {
		body string
		want int
	}{
		{`{` + base + `,"lo":-1,"hi":1}`, 400},
		{`{` + base + `,"lo":2,"hi":2}`, 400},
		{`{` + base + `,"lo":5,"hi":2}`, 400},
		{`{` + base + `,"lo":1}`, 400},         // lo without hi
		{`{` + base + `,"lo":0,"hi":99}`, 400}, // beyond the 2-row grid
	} {
		resp, body := postJSON(t, ts.URL+"/v1/sweep", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %s: status %d (%s), want %d", c.body, resp.StatusCode, body, c.want)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/study", `{`+base+`,"lo":0,"hi":1}`)
	if resp.StatusCode != 400 || !strings.Contains(string(body), "lo") {
		t.Fatalf("study with shard range: %d %s, want 400 naming the field", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/plan", `{`+base+`,"lo":0,"hi":1}`)
	if resp.StatusCode != 400 {
		t.Fatalf("plan with shard range: %d %s, want 400", resp.StatusCode, body)
	}
}

// TestModelSelection: an unknown model is a 400 naming the valid zoo;
// a valid non-default model computes against its own calibrated
// analyzer and yields a different study than the BERT default.
func TestModelSelection(t *testing.T) {
	_, col, ts := testServer(t, DefaultConfig())

	resp, body := postJSON(t, ts.URL+"/v1/study", `{"h":[1024],"sl":[1024],"tp":[4],"flopbw":[1],"model":"BERT-XXL"}`)
	if resp.StatusCode != 400 {
		t.Fatalf("unknown model: %d %s", resp.StatusCode, body)
	}
	for _, name := range []string{"BERT", "GPT-2", "PaLM"} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("unknown-model 400 does not list %q: %s", name, body)
		}
	}

	spec := `{"h":[1024],"sl":[1024],"tp":[4,8],"flopbw":[1]`
	_, bertBody := postJSON(t, ts.URL+"/v1/study", spec+`}`)
	respGPT, gptBody := postJSON(t, ts.URL+"/v1/study", spec+`,"model":"GPT-2"}`)
	if respGPT.StatusCode != 200 {
		t.Fatalf("GPT-2 study: %d %s", respGPT.StatusCode, gptBody)
	}
	if bytes.Equal(bertBody, gptBody) {
		t.Fatal("GPT-2 study is byte-identical to BERT's — model selection had no effect")
	}
	if n := counter(t, col, "serve.analyzer.models"); n != 1 {
		t.Fatalf("analyzer.models counter = %d, want 1 (GPT-2 built lazily)", n)
	}
	// Same model again: memoized, no second build.
	postJSON(t, ts.URL+"/v1/study", spec+`,"model":"GPT-2","target_fraction":0.4}`)
	if n := counter(t, col, "serve.analyzer.models"); n != 1 {
		t.Fatalf("analyzer.models counter = %d after reuse, want 1", n)
	}

	// The explicit default model shares the cache entry with the implicit
	// one: normalization fills the default before hashing.
	r1, _ := postJSON(t, ts.URL+"/v1/study", spec+`}`)
	r2, _ := postJSON(t, ts.URL+"/v1/study", spec+`,"model":"BERT"}`)
	if r1.Header.Get("X-Twocsd-Request") != r2.Header.Get("X-Twocsd-Request") {
		t.Fatal("implicit and explicit default model hash differently")
	}
}
