module twocs

go 1.22
