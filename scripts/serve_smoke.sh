#!/bin/sh
# serve_smoke.sh — the CI daemon smoke: boot twocsd, hold it to the
# service contracts end to end, and shut it down like production would
# (SIGTERM), checking:
#
#   - the daemon announces its bound address on stderr and /healthz
#     answers while it serves;
#   - POST /v1/study twice with equivalent specs (second one permuted):
#     the first is a cache miss, the second a hit with a byte-identical
#     body, and /metrics shows exactly one twocs_serve_cache_miss and
#     one twocs_serve_cache_hit;
#   - POST /v1/sweep streams NDJSON whose every line is valid JSON,
#     whose trailer is complete with rows == data lines, and whose row
#     count /progress agrees with after the stream;
#   - SIGTERM exits 0 with the shutdown announcement — the leak-free
#     drain path, not a kill.
#
# Usage: scripts/serve_smoke.sh [binary]   (default: build ./cmd/twocsd)
set -eu

BIN=${1:-}
if [ -z "$BIN" ]; then
    BIN=$(mktemp -d)/twocsd
    go build -o "$BIN" ./cmd/twocsd
fi

WORK=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$BIN" -addr 127.0.0.1:0 2> "$WORK/stderr.txt" &
PID=$!

ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#^twocsd: listening on http://##p' "$WORK/stderr.txt" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup"; cat "$WORK/stderr.txt"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "daemon never announced an address"; cat "$WORK/stderr.txt"; exit 1; }

curl -sf "http://$ADDR/healthz" | grep -q '^ok$'

# Study twice: equivalent specs (axes permuted and duplicated the
# second time) must land on one cache entry.
curl -sf -D "$WORK/h1.txt" -o "$WORK/b1.json" -X POST \
    -d '{"h":[1024,2048],"sl":[1024],"tp":[4,8,16],"flopbw":[1,2],"target_fraction":0.5}' \
    "http://$ADDR/v1/study"
curl -sf -D "$WORK/h2.txt" -o "$WORK/b2.json" -X POST \
    -d '{"tp":[16,8,4,8],"sl":[1024],"h":[2048,1024],"b":1,"flopbw":[2,1]}' \
    "http://$ADDR/v1/study"
grep -qi '^X-Twocsd-Cache: miss' "$WORK/h1.txt" || { echo "first study was not a miss"; cat "$WORK/h1.txt"; exit 1; }
grep -qi '^X-Twocsd-Cache: hit' "$WORK/h2.txt" || { echo "second study was not a hit"; cat "$WORK/h2.txt"; exit 1; }
cmp "$WORK/b1.json" "$WORK/b2.json" || { echo "cached body differs from computed body"; exit 1; }

# The study body is well-formed: scenarios with points and crossover
# tables, spec echoed in normalized form.
python3 - "$WORK/b1.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["spec"]["h"] == [1024, 2048], r["spec"]
assert r["spec"]["target_fraction"] == 0.5, r["spec"]
assert r["points"] > 0 and len(r["scenarios"]) == 2, (r["points"], len(r["scenarios"]))
for sc in r["scenarios"]:
    assert sc["points"] and sc["crossover"], sc["evo"]
    for p in sc["points"]:
        assert 0 <= p["comm_frac"] <= 1, p
EOF

# The request metrics on /metrics agree with what just happened.
curl -sf "http://$ADDR/metrics" > "$WORK/metrics.txt"
grep -q '^twocs_serve_cache_miss 1$' "$WORK/metrics.txt" || { echo "cache miss counter wrong"; grep twocs_serve "$WORK/metrics.txt"; exit 1; }
grep -q '^twocs_serve_cache_hit 1$' "$WORK/metrics.txt" || { echo "cache hit counter wrong"; grep twocs_serve "$WORK/metrics.txt"; exit 1; }

# Sweep: machine-check the NDJSON artifact and its trailer.
curl -sf -X POST \
    -d '{"h":[1024,2048],"sl":[1024,2048],"tp":[4,8],"flopbw":[1,2]}' \
    "http://$ADDR/v1/sweep" > "$WORK/sweep.ndjson"
python3 - "$WORK/sweep.ndjson" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
rows = [json.loads(l) for l in lines]          # every line must parse
trailer = rows[-1]
data = rows[:-1]
assert trailer.get("trailer") is True, trailer
assert trailer["complete"] is True and not trailer.get("reason"), trailer
assert trailer["rows"] == trailer["total"] == len(data), (trailer, len(data))
assert not any(r.get("canceled") for r in data), "complete sweep has canceled rows"
EOF

# /progress describes the sweep that just finished, agreeing with the
# trailer's verdict and row count.
curl -sf "http://$ADDR/progress" > "$WORK/progress.json"
python3 - "$WORK/progress.json" "$WORK/sweep.ndjson" <<'EOF'
import json, sys
p = json.load(open(sys.argv[1]))
trailer = json.loads([l for l in open(sys.argv[2]) if l.strip()][-1])
assert p["label"] == "sweep-stream", p
assert p["done"] and p["complete"], p
assert p["rows"] == trailer["rows"] and p["total"] == trailer["total"], (p, trailer)
EOF

# SIGTERM: graceful, announced, exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "SIGTERM exit status $STATUS, want 0"; cat "$WORK/stderr.txt"; exit 1; }
grep -q '^twocsd: shutting down$' "$WORK/stderr.txt" || { echo "no shutdown announcement"; cat "$WORK/stderr.txt"; exit 1; }

echo "serve_smoke: OK (served at $ADDR)"
