#!/bin/sh
# obs_smoke.sh — the CI observability smoke: launch a multi-second
# streaming sweep with the live plane armed (-http, -sample,
# -progress), scrape the debug server MID-RUN, and hold the answers to
# the wire contracts:
#
#   - /healthz answers "ok" while the sweep is still streaming;
#   - /metrics is well-formed Prometheus text exposition (every sample
#     line's metric has a # TYPE header, counters are integers) and the
#     twocs_parallel_stream_rows counter is nonzero — proof the scrape
#     landed mid-stream, not after;
#   - /progress is valid JSON naming the sweep-stream label;
#   - the -progress NDJSON heartbeats on stderr are valid JSON events;
#   - the run itself still exits 0 with its artifact intact.
#
# Usage: scripts/obs_smoke.sh [binary]   (default: build ./cmd/twocs)
set -eu

BIN=${1:-}
if [ -z "$BIN" ]; then
    BIN=$(mktemp -d)/twocs
    go build -o "$BIN" ./cmd/twocs
fi

WORK=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# ~2000 scenarios x 196 grid points ≈ 4*10^5 rows: long enough to
# scrape mid-run on any CI box, short enough to finish in seconds.
"$BIN" -http 127.0.0.1:0 -sample 100ms -progress 200ms \
    sweep-stream -scenarios 2000 -out "$WORK/rows.ndjson" \
    > "$WORK/stdout.txt" 2> "$WORK/stderr.txt" &
PID=$!

# The bound address is announced on stderr; poll for it.
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#^twocs: debug server listening on http://##p' "$WORK/stderr.txt" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "run died before serving"; cat "$WORK/stderr.txt"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "debug server never announced an address"; cat "$WORK/stderr.txt"; exit 1; }

# Poll /metrics until the stream has emitted rows (a mid-run scrape).
SCRAPED=0
i=0
while [ $i -lt 100 ]; do
    if curl -sf "http://$ADDR/metrics" > "$WORK/metrics.txt" 2>/dev/null; then
        ROWS=$(sed -n 's/^twocs_parallel_stream_rows \([0-9][0-9]*\)$/\1/p' "$WORK/metrics.txt")
        if [ -n "$ROWS" ] && [ "$ROWS" -gt 0 ]; then SCRAPED=1; break; fi
    fi
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
    i=$((i + 1))
done
[ "$SCRAPED" -eq 1 ] || { echo "never scraped a nonzero rows counter mid-run"; cat "$WORK/metrics.txt" 2>/dev/null || true; exit 1; }

curl -sf "http://$ADDR/healthz" | grep -q '^ok$'
curl -sf "http://$ADDR/progress" > "$WORK/progress.json"

kill -0 "$PID" 2>/dev/null || { echo "run exited before the scrapes finished"; exit 1; }

# Well-formed Prometheus text: every sample line's metric family has a
# matching # TYPE header, and the scraped counter is an integer.
python3 - "$WORK/metrics.txt" <<'EOF'
import re, sys
typed, sampled = set(), set()
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split()
        assert len(parts) == 4 and parts[3] in ("counter", "gauge", "histogram"), line
        typed.add(parts[2])
    elif line.startswith("#"):
        continue
    else:
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$', line)
        assert m, f"malformed sample line: {line!r}"
        name = m.group(1)
        base = re.sub(r'_(bucket|sum|count|p50|p95|p99)$', '', name)
        sampled.add((name, base))
for name, base in sampled:
    assert name in typed or base in typed, f"sample {name} has no # TYPE header"
assert any(n == "twocs_parallel_stream_rows" for n, _ in sampled)
EOF

# /progress is valid JSON for the live sweep.
python3 - "$WORK/progress.json" <<'EOF'
import json, sys
p = json.load(open(sys.argv[1]))
assert p["label"] == "sweep-stream", p
assert p["total"] > 0, p
EOF

wait "$PID"

# Heartbeats: every NDJSON event line on stderr parses, and the final
# one reports the completed stream.
grep '"event":"progress"' "$WORK/stderr.txt" > "$WORK/heartbeats.ndjson"
python3 - "$WORK/heartbeats.ndjson" <<'EOF'
import json, sys
events = [json.loads(l) for l in open(sys.argv[1])]
assert events, "no heartbeat events on stderr"
assert all(e["event"] == "progress" for e in events)
last = events[-1]
assert last["done"] and last["complete"], last
EOF

# The artifact is intact: complete trailer on the streamed rows.
tail -1 "$WORK/rows.ndjson" | grep -q '"complete":true'

echo "obs_smoke: OK (scraped live at $ADDR)"
