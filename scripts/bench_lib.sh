# bench_lib.sh — shared helpers for the bench scripts. POSIX sh + awk
# only; source with `. scripts/bench_lib.sh`.

# emit_json RAW OUT COUNT — parse `go test -bench` output lines
# (`BenchmarkName-P  N  ns/op  B/op  allocs/op`) into the repo's
# baseline JSON, keeping the best (minimum) ns/op across repetitions,
# as benchstat's central tendency would.
emit_json() {
    awk -v count="$3" '
/^Benchmark/ && NF >= 7 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    bytes = $5 + 0
    allocs = $7 + 0
    if (!(name in best) || ns < best[name]) {
        best[name] = ns
        bestBytes[name] = bytes
        bestAllocs[name] = allocs
    }
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"unit\": {\"time\": \"ns/op\", \"mem\": \"B/op\", \"allocs\": \"allocs/op\"},\n"
    printf "  \"count\": %d,\n  \"benchmarks\": [\n", count
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n",
            name, best[name], bestBytes[name], bestAllocs[name], (i < n-1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$1" > "$2"
    echo "wrote $2" >&2
}

# bench_rows FILE — flatten a baseline JSON into `name ns bytes allocs`
# lines for shell-side comparison and rendering.
bench_rows() {
    awk '
/"name":/ {
    line = $0
    gsub(/[",{}]/, "", line)
    n = split(line, parts, /[: ,]+/)
    name = ""; ns = bytes = allocs = 0
    for (i = 1; i <= n; i++) {
        if (parts[i] == "name") name = parts[i+1]
        if (parts[i] == "ns_per_op") ns = parts[i+1] + 0
        if (parts[i] == "bytes_per_op") bytes = parts[i+1] + 0
        if (parts[i] == "allocs_per_op") allocs = parts[i+1] + 0
    }
    if (name != "") printf "%s %d %d %d\n", name, ns, bytes, allocs
}' "$1"
}
