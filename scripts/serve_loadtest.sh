#!/bin/sh
# serve_loadtest.sh — hammer a twocsd daemon with identical /v1/study
# requests and report cold-vs-warm latency. The first request pays for
# the grid walk (cache miss); every subsequent one must be served from
# the LRU cache, so the warm distribution is the service's floor. The
# script reports p50/p95/max for the warm phase, asserts every warm
# request was a cache hit with a body identical to the first, and
# cross-checks the hit counter on /metrics.
#
# Usage: scripts/serve_loadtest.sh [requests] [binary]
#   requests  warm-phase request count (default 200)
#   binary    twocsd binary (default: build ./cmd/twocsd)
set -eu

N=${1:-200}
BIN=${2:-}
if [ -z "$BIN" ]; then
    BIN=$(mktemp -d)/twocsd
    go build -o "$BIN" ./cmd/twocsd
fi

WORK=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Generous admission so the load test measures the cache, not the
# token bucket.
"$BIN" -addr 127.0.0.1:0 -rate 100000 -burst 100000 2> "$WORK/stderr.txt" &
PID=$!

ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#^twocsd: listening on http://##p' "$WORK/stderr.txt" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup"; cat "$WORK/stderr.txt"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "daemon never announced an address"; cat "$WORK/stderr.txt"; exit 1; }

python3 - "$ADDR" "$N" <<'EOF'
import json, sys, time, urllib.request

addr, n = sys.argv[1], int(sys.argv[2])
spec = json.dumps({"h": [1024, 2048, 4096], "sl": [1024, 2048],
                   "tp": [4, 8, 16, 32], "flopbw": [1, 2, 10]}).encode()

def study():
    req = urllib.request.Request(f"http://{addr}/v1/study", data=spec,
                                 headers={"Content-Type": "application/json"})
    t0 = time.perf_counter()
    with urllib.request.urlopen(req) as resp:
        body = resp.read()
        cache = resp.headers.get("X-Twocsd-Cache")
    return (time.perf_counter() - t0) * 1e3, cache, body

cold_ms, cache, first = study()
assert cache == "miss", f"first request was {cache!r}, want miss"

warm, misses = [], 0
for _ in range(n):
    ms, cache, body = study()
    warm.append(ms)
    if cache != "hit":
        misses += 1
    assert body == first, "warm body diverges from the computed one"
assert misses == 0, f"{misses}/{n} warm requests missed the cache"

warm.sort()
p50 = warm[len(warm) // 2]
p95 = warm[min(len(warm) - 1, int(len(warm) * 0.95))]
print(f"cold (miss):  {cold_ms:8.2f} ms")
print(f"warm (hit) over {n} requests:")
print(f"  p50 {p50:8.2f} ms   p95 {p95:8.2f} ms   max {warm[-1]:8.2f} ms")

with urllib.request.urlopen(f"http://{addr}/metrics") as resp:
    metrics = resp.read().decode()
for line in metrics.splitlines():
    if line.startswith("twocs_serve_cache_hit "):
        hits = int(line.split()[1])
        assert hits >= n, f"/metrics hit counter {hits} < {n}"
        break
else:
    raise AssertionError("twocs_serve_cache_hit missing from /metrics")
print(f"/metrics: twocs_serve_cache_hit {hits}")
EOF

kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "SIGTERM exit status $STATUS, want 0"; exit 1; }
echo "serve_loadtest: OK"
