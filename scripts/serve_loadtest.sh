#!/bin/sh
# serve_loadtest.sh — hammer a twocsd daemon with identical /v1/study
# requests and report cold-vs-warm latency. The first request pays for
# the grid walk (cache miss); every subsequent one must be served from
# the LRU cache, so the warm distribution is the service's floor. The
# script reports p50/p95/p99/max and the error count for the warm
# phase, asserts every warm request was a cache hit with a body
# identical to the first, and cross-checks the hit counter on /metrics.
#
# Usage: scripts/serve_loadtest.sh [requests] [binary]
#   requests  warm-phase request count (default 200)
#   binary    twocsd binary (default: build ./cmd/twocsd)
set -eu

N=${1:-200}
BIN=${2:-}
if [ -z "$BIN" ]; then
    BIN=$(mktemp -d)/twocsd
    go build -o "$BIN" ./cmd/twocsd
fi

WORK=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Generous admission so the load test measures the cache, not the
# token bucket.
"$BIN" -addr 127.0.0.1:0 -rate 100000 -burst 100000 2> "$WORK/stderr.txt" &
PID=$!

ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#^twocsd: listening on http://##p' "$WORK/stderr.txt" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "daemon died during startup"; cat "$WORK/stderr.txt"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "daemon never announced an address"; cat "$WORK/stderr.txt"; exit 1; }

python3 - "$ADDR" "$N" <<'EOF'
import json, sys, time, urllib.error, urllib.request

addr, n = sys.argv[1], int(sys.argv[2])
spec = json.dumps({"h": [1024, 2048, 4096], "sl": [1024, 2048],
                   "tp": [4, 8, 16, 32], "flopbw": [1, 2, 10]}).encode()

errors = {}  # HTTP status / error kind -> count

def study():
    req = urllib.request.Request(f"http://{addr}/v1/study", data=spec,
                                 headers={"Content-Type": "application/json"})
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(req) as resp:
            body = resp.read()
            cache = resp.headers.get("X-Twocsd-Cache")
    except urllib.error.HTTPError as e:
        errors[e.code] = errors.get(e.code, 0) + 1
        return (time.perf_counter() - t0) * 1e3, None, None
    except urllib.error.URLError as e:
        errors[str(e.reason)] = errors.get(str(e.reason), 0) + 1
        return (time.perf_counter() - t0) * 1e3, None, None
    return (time.perf_counter() - t0) * 1e3, cache, body

cold_ms, cache, first = study()
assert cache == "miss", f"first request was {cache!r}, want miss"

warm, misses = [], 0
for _ in range(n):
    ms, cache, body = study()
    warm.append(ms)
    if body is None:
        continue
    if cache != "hit":
        misses += 1
    assert body == first, "warm body diverges from the computed one"
assert misses == 0, f"{misses}/{n} warm requests missed the cache"

warm.sort()
def pct(q):
    return warm[min(len(warm) - 1, int(len(warm) * q))]
print(f"cold (miss):  {cold_ms:8.2f} ms")
print(f"warm (hit) over {n} requests:")
print(f"  p50 {pct(0.5):8.2f} ms   p95 {pct(0.95):8.2f} ms   "
      f"p99 {pct(0.99):8.2f} ms   max {warm[-1]:8.2f} ms")
nerr = sum(errors.values())
print(f"  errors: {nerr}/{n}" + (f"  {errors}" if errors else ""))
assert nerr == 0, f"warm phase saw {nerr} errors: {errors}"

with urllib.request.urlopen(f"http://{addr}/metrics") as resp:
    metrics = resp.read().decode()
for line in metrics.splitlines():
    if line.startswith("twocs_serve_cache_hit "):
        hits = int(line.split()[1])
        assert hits >= n, f"/metrics hit counter {hits} < {n}"
        break
else:
    raise AssertionError("twocs_serve_cache_hit missing from /metrics")
print(f"/metrics: twocs_serve_cache_hit {hits}")
EOF

kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "SIGTERM exit status $STATUS, want 0"; exit 1; }
echo "serve_loadtest: OK"
