#!/bin/sh
# shard_smoke.sh — the CI fan-out smoke: boot three local twocsd
# replicas, distribute a sweep over them with `twocs sweep-fan`, and
# hold the scale-out layer to its contracts end to end:
#
#   - the fanned NDJSON artifact AND the digest tables are
#     byte-identical to a local single-node `twocs sweep-stream` of the
#     same grid (rows, trailer, top-K, Pareto, marginals);
#   - SIGTERMing one replica mid-run does not change a byte: the
#     coordinator retires it, re-dispatches the interrupted shard's
#     remaining range to a healthy replica, and the artifact still
#     matches the single-node one;
#   - the fan run exits 0 both times (the kill is absorbed, not
#     surfaced).
#
# Usage: scripts/shard_smoke.sh [twocs-binary [twocsd-binary]]
set -eu

TWOCS=${1:-}
TWOCSD=${2:-}
if [ -z "$TWOCS" ]; then
    TWOCS=$(mktemp -d)/twocs
    go build -o "$TWOCS" ./cmd/twocs
fi
if [ -z "$TWOCSD" ]; then
    TWOCSD=$(mktemp -d)/twocsd
    go build -o "$TWOCSD" ./cmd/twocsd
fi

WORK=$(mktemp -d)
PIDS=
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

# start_replica N -> replica address in $ADDR, pid appended to $PIDS.
start_replica() {
    "$TWOCSD" -addr 127.0.0.1:0 2> "$WORK/replica$1.err" &
    PIDS="$PIDS $!"
    eval "PID$1=$!"
    ADDR=
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's#^twocsd: listening on http://##p' "$WORK/replica$1.err" | head -1)
        [ -n "$ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "replica $1 never announced an address"; cat "$WORK/replica$1.err"; exit 1; }
}

start_replica 1; R1=$ADDR
start_replica 2; R2=$ADDR
start_replica 3; R3=$ADDR
REPLICAS="http://$R1,http://$R2,http://$R3"

# ~31k-row grid (200 flop-vs-bw scenarios over the Table 3 axes),
# shard-rows chosen so the plan has many shards per replica.
GRID="-scenarios 200 -flopbw-max 10"
DIGESTS="-topk 5 -pareto -marginals"

"$TWOCS" sweep-stream $GRID $DIGESTS -out "$WORK/single.ndjson" \
    > "$WORK/digests_single.txt" 2> /dev/null

"$TWOCS" sweep-fan -replicas "$REPLICAS" -shard-rows 2048 $GRID $DIGESTS \
    -out "$WORK/fan.ndjson" > "$WORK/digests_fan.txt" 2> "$WORK/fan.err"
cmp "$WORK/single.ndjson" "$WORK/fan.ndjson" \
    || { echo "fan artifact differs from single-node sweep"; exit 1; }
cmp "$WORK/digests_single.txt" "$WORK/digests_fan.txt" \
    || { echo "fan digests differ from single-node sweep"; exit 1; }

# Same sweep again, but SIGTERM replica 3 shortly after launch: the
# fleet shrinks mid-run and the output must not change by a byte.
"$TWOCS" sweep-fan -replicas "$REPLICAS" -shard-rows 2048 $GRID $DIGESTS \
    -out "$WORK/fan_kill.ndjson" > "$WORK/digests_kill.txt" 2> "$WORK/fan_kill.err" &
FAN=$!
sleep 0.1
kill -TERM "$PID3" 2>/dev/null || true
STATUS=0
wait "$FAN" || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "fan exit status $STATUS after replica kill, want 0"; cat "$WORK/fan_kill.err"; exit 1; }
cmp "$WORK/single.ndjson" "$WORK/fan_kill.ndjson" \
    || { echo "fan artifact differs after mid-run replica kill"; exit 1; }
cmp "$WORK/digests_single.txt" "$WORK/digests_kill.txt" \
    || { echo "fan digests differ after mid-run replica kill"; exit 1; }

SUMMARY=$(sed -n 's/^twocs: fanned //p' "$WORK/fan_kill.err")
echo "shard_smoke: OK (3 replicas at $R1 $R2 $R3; after kill: $SUMMARY)"
