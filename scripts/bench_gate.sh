#!/bin/sh
# bench_gate.sh — the CI perf-regression gate. Re-runs the
# compiled-schedule and streaming-sweep benchmark sets and compares the
# fresh best-of-N numbers against the committed baselines:
#
#   - ns/op more than BENCH_TOLERANCE percent (default 10) above the
#     machine-normalized baseline fails the gate — provided the
#     absolute regression also clears BENCH_NS_FLOOR nanoseconds
#     (default 100), so sub-100ns timer jitter on nanosecond-scale
#     benchmarks cannot flake it;
#   - ANY allocs/op increase fails the gate — the zero-alloc re-time
#     path and the alloc-free sink Emits are exact contracts, not
#     statistical ones;
#   - a benchmark present in the baseline but missing from the fresh
#     run fails the gate (a silently deleted benchmark is a silently
#     dropped contract).
#
# Machine normalization: both gated sets record BenchmarkCalibrationSpin
# — a fixed CPU-bound workload that is not itself a contract. The gate
# scales each baseline by (fresh spin ns / recorded spin ns), clamped to
# [0.5, 2], before applying the tolerance, so frequency scaling and
# noisy neighbors between the baseline run and the gate run cancel out
# while genuine code regressions do not.
#
# New benchmarks (in the fresh run, not the baseline) pass with a note:
# commit the refreshed baseline to start tracking them. The sweep set
# (BENCH_sweep.json) is intentionally not gated — its grid benchmarks
# are the noisiest and the telemetry contract they guard has its own
# determinism gate.
#
# Usage: scripts/bench_gate.sh
# Environment: BENCH_TOLERANCE (percent, default 10), BENCH_NS_FLOOR
# (nanoseconds, default 100), BENCH_COUNT (default 8 here: the gate
# takes the best of N repetitions, and more repetitions pull the best
# closer to the machine's true floor before comparing).
set -eu

tol="${BENCH_TOLERANCE:-10}"
floor="${BENCH_NS_FLOOR:-100}"
export BENCH_COUNT="${BENCH_COUNT:-8}"
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

for f in BENCH_sim.json BENCH_stream.json; do
    [ -f "$f" ] || { echo "bench_gate: missing baseline $f" >&2; exit 1; }
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

scripts/bench_sweep.sh "$tmp/sweep.json" "$tmp/sim.json" "$tmp/stream.json"

gate() {
    base="$1"
    fresh="$2"
    bench_rows "$base" > "$tmp/base.rows"
    bench_rows "$fresh" > "$tmp/fresh.rows"
    awk -v tol="$tol" -v floor="$floor" -v set="$base" '
NR == FNR { baseNs[$1] = $2; baseAllocs[$1] = $4; next }
{
    if (!($1 in freshNs)) names[n++] = $1
    freshNs[$1] = $2
    freshAllocs[$1] = $4
}
END {
    cal = "BenchmarkCalibrationSpin"
    scale = 1
    if ((cal in baseNs) && (cal in freshNs) && baseNs[cal] > 0) {
        scale = freshNs[cal] / baseNs[cal]
        if (scale < 0.5) scale = 0.5
        if (scale > 2) scale = 2
        printf "info %s: machine scale %.2f (calibration spin %d -> %d ns/op)\n",
            set, scale, baseNs[cal], freshNs[cal]
    } else {
        printf "info %s: no calibration spin in both runs; machine scale 1.00\n", set
    }
    for (i = 0; i < n; i++) {
        name = names[i]
        if (name == cal) continue
        if (!(name in baseNs)) {
            printf "note %s: %s is new (not in baseline); commit a refreshed baseline to track it\n", set, name
            continue
        }
        adjusted = baseNs[name] * scale
        limit = adjusted * (1 + tol / 100)
        if (limit < adjusted + floor) limit = adjusted + floor
        if (freshNs[name] > limit) {
            printf "FAIL %s: %s ns/op %d exceeds normalized baseline %d by more than %d%%\n",
                set, name, freshNs[name], adjusted, tol
            bad = 1
        } else {
            printf "ok   %s: %s ns/op %d (normalized baseline %d)\n", set, name, freshNs[name], adjusted
        }
        if (freshAllocs[name] > baseAllocs[name]) {
            printf "FAIL %s: %s allocs/op rose %d -> %d\n", set, name, baseAllocs[name], freshAllocs[name]
            bad = 1
        }
    }
    for (name in baseNs) {
        if (!(name in freshNs)) {
            printf "FAIL %s: %s is in the baseline but missing from the fresh run\n", set, name
            bad = 1
        }
    }
    exit bad ? 1 : 0
}' "$tmp/base.rows" "$tmp/fresh.rows"
}

status=0
gate BENCH_sim.json "$tmp/sim.json" || status=1
gate BENCH_stream.json "$tmp/stream.json" || status=1
if [ "$status" -ne 0 ]; then
    echo "bench_gate: perf regression against committed baselines (tolerance ${tol}%)" >&2
fi
exit "$status"
