#!/bin/sh
# bench_sweep.sh — run the perf-contract benchmarks and record the
# baselines as machine-readable JSON at the repo root.
#
# Two contracts, two files:
#
#   BENCH_sweep.json — the sweep-engine set (root package). The recorded
#     numbers are the telemetry layer's performance contract: with no
#     collector enabled the instrumented sweeps must stay within a few
#     percent of these (the span hot path is a nil check).
#
#   BENCH_sim.json — the compiled-schedule set: the internal/sim
#     re-time benchmarks (BenchmarkProgramReTime*, BenchmarkRunRebuild)
#     plus the evolution-grid benchmark, which is the re-time path's
#     end-to-end effect. Regressions show up as a diff in this file.
#
# Usage: scripts/bench_sweep.sh [sweep.json] [sim.json]
# Environment: BENCH_COUNT (default 3) -count passed to go test.
set -eu

sweep_out="${1:-BENCH_sweep.json}"
sim_out="${2:-BENCH_sim.json}"
count="${BENCH_COUNT:-3}"
cd "$(dirname "$0")/.."

raw_sweep="$(mktemp)"
raw_sim="$(mktemp)"
trap 'rm -f "$raw_sweep" "$raw_sim"' EXIT

go test -run '^$' -bench 'Sweep|EvolutionGrid' -benchmem -count="$count" . | tee "$raw_sweep" >&2
go test -run '^$' -bench 'ProgramReTime|RunRebuild' -benchmem -count="$count" ./internal/sim | tee "$raw_sim" >&2

# The grid benchmark belongs to both contracts: it is the sweep set's
# heaviest member and the compiled-schedule layer's acceptance number.
grep '^BenchmarkSerializedEvolutionGrid' "$raw_sweep" >> "$raw_sim"

# Parse `BenchmarkName-P  N  ns/op  B/op  allocs/op` lines into JSON,
# keeping the best (minimum) ns/op across repetitions, as benchstat's
# central tendency would. awk only — no dependencies beyond the Go
# toolchain and POSIX sh.
emit_json() {
    awk -v count="$count" '
/^Benchmark/ && NF >= 7 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    bytes = $5 + 0
    allocs = $7 + 0
    if (!(name in best) || ns < best[name]) {
        best[name] = ns
        bestBytes[name] = bytes
        bestAllocs[name] = allocs
    }
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"unit\": {\"time\": \"ns/op\", \"mem\": \"B/op\", \"allocs\": \"allocs/op\"},\n"
    printf "  \"count\": %d,\n  \"benchmarks\": [\n", count
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n",
            name, best[name], bestBytes[name], bestAllocs[name], (i < n-1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$1" > "$2"
    echo "wrote $2" >&2
}

emit_json "$raw_sweep" "$sweep_out"
emit_json "$raw_sim" "$sim_out"
