#!/bin/sh
# bench_sweep.sh — run the perf-contract benchmarks and record the
# baselines as machine-readable JSON at the repo root.
#
# Three contracts, three files:
#
#   BENCH_sweep.json — the sweep-engine set (root package). The recorded
#     numbers are the telemetry layer's performance contract: with no
#     collector enabled the instrumented sweeps must stay within a few
#     percent of these (the span hot path is a nil check).
#
#   BENCH_sim.json — the compiled-schedule set: the internal/sim
#     re-time benchmarks (BenchmarkProgramReTime*, BenchmarkRunRebuild)
#     plus the evolution-grid benchmark, which is the re-time path's
#     end-to-end effect. Regressions show up as a diff in this file.
#
#   BENCH_stream.json — the streaming-sweep set: per-row sink encoding
#     (NDJSON), the online reducers (Pareto, top-K), the ordered chunk
#     engine, and the arena re-time step that prices one grid point in
#     zero allocations. These are the per-point costs that decide
#     whether a 10⁶-10⁷ point search is practical.
#
# scripts/bench_gate.sh holds a fresh run to the committed sim and
# stream baselines; scripts/bench_report.sh renders all three into
# BENCHMARK.md.
#
# Usage: scripts/bench_sweep.sh [sweep.json] [sim.json] [stream.json]
# Environment: BENCH_COUNT (default 3) -count passed to go test.
set -eu

sweep_out="${1:-BENCH_sweep.json}"
sim_out="${2:-BENCH_sim.json}"
stream_out="${3:-BENCH_stream.json}"
count="${BENCH_COUNT:-3}"
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

raw_sweep="$(mktemp)"
raw_sim="$(mktemp)"
raw_stream="$(mktemp)"
trap 'rm -f "$raw_sweep" "$raw_sim" "$raw_stream"' EXIT

go test -run '^$' -bench 'Sweep|EvolutionGrid' -benchmem -count="$count" . | tee "$raw_sweep" >&2
go test -run '^$' -bench 'ProgramReTime|RunRebuild' -benchmem -count="$count" ./internal/sim | tee "$raw_sim" >&2
go test -run '^$' -bench 'NDJSONEmit|ParetoEmit|TopKEmit|CalibrationSpin' -benchmem -count="$count" ./internal/stream | tee "$raw_stream" >&2
go test -run '^$' -bench 'StreamCtx' -benchmem -count="$count" ./internal/parallel | tee -a "$raw_stream" >&2
go test -run '^$' -bench 'ArenaReTime' -benchmem -count="$count" ./internal/dist | tee -a "$raw_stream" >&2

# The grid benchmark belongs to both contracts: it is the sweep set's
# heaviest member and the compiled-schedule layer's acceptance number.
grep '^BenchmarkSerializedEvolutionGrid' "$raw_sweep" >> "$raw_sim"

# The calibration spin (a fixed CPU workload, not a contract) is
# recorded into both gated sets so bench_gate.sh can normalize each for
# machine-speed drift between the baseline run and the gate run.
grep '^BenchmarkCalibrationSpin' "$raw_stream" >> "$raw_sim"

emit_json "$raw_sweep" "$sweep_out" "$count"
emit_json "$raw_sim" "$sim_out" "$count"
emit_json "$raw_stream" "$stream_out" "$count"
