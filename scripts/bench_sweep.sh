#!/bin/sh
# bench_sweep.sh — run the sweep-engine benchmarks and record the
# baseline as machine-readable JSON at the repo root (BENCH_sweep.json).
#
# The recorded numbers are the telemetry layer's performance contract:
# with no collector enabled the instrumented sweeps must stay within a
# few percent of these (the span hot path is a nil check), so regressions
# show up as a diff in this file.
#
# Usage: scripts/bench_sweep.sh [output.json]
# Environment: BENCH_COUNT (default 3) -count passed to go test.
set -eu

out="${1:-BENCH_sweep.json}"
count="${BENCH_COUNT:-3}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'Sweep|EvolutionGrid' -benchmem -count="$count" . | tee "$raw" >&2

# Parse `BenchmarkName-P  N  ns/op  B/op  allocs/op` lines into JSON,
# keeping the best (minimum) ns/op across repetitions, as benchstat's
# central tendency would. awk only — no dependencies beyond the Go
# toolchain and POSIX sh.
awk -v count="$count" '
/^Benchmark/ && NF >= 7 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    bytes = $5 + 0
    allocs = $7 + 0
    if (!(name in best) || ns < best[name]) {
        best[name] = ns
        bestBytes[name] = bytes
        bestAllocs[name] = allocs
    }
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"unit\": {\"time\": \"ns/op\", \"mem\": \"B/op\", \"allocs\": \"allocs/op\"},\n"
    printf "  \"count\": %d,\n  \"benchmarks\": [\n", count
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n",
            name, best[name], bestBytes[name], bestAllocs[name], (i < n-1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
