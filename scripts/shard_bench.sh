#!/bin/sh
# shard_bench.sh — measure fan-out sweep throughput and refresh
# BENCH_shard.json: a ~1M-row evolution grid distributed with `twocs
# sweep-fan` over 1, 2 and 3 local twocsd replicas, recording rows/sec
# per fleet size plus the 3-vs-1 speedup.
#
# The replicas run on THIS machine, so the numbers are honest for this
# machine: with fewer cores than replicas the fleet time-slices one
# CPU and the speedup ceiling is ~1x — the recorded "cpus" field says
# which regime a number came from. On a host (or real fleet) with >=
# one core per replica the same plan scales with fleet size; see
# EXPERIMENTS.md.
#
# Usage: scripts/shard_bench.sh [scenarios] [out.json]
#   scenarios  flop-vs-bw scenario count (default 6411 ~= 1.0M rows)
set -eu

SCENARIOS=${1:-6411}
OUT=${2:-BENCH_shard.json}
cd "$(dirname "$0")/.."

BINDIR=$(mktemp -d)
WORK=$(mktemp -d)
PIDS=
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK" "$BINDIR"' EXIT

go build -o "$BINDIR/twocs" ./cmd/twocs
go build -o "$BINDIR/twocsd" ./cmd/twocsd

start_replica() {
    "$BINDIR/twocsd" -addr 127.0.0.1:0 2> "$WORK/replica$1.err" &
    PIDS="$PIDS $!"
    ADDR=
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's#^twocsd: listening on http://##p' "$WORK/replica$1.err" | head -1)
        [ -n "$ADDR" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$ADDR" ] || { echo "replica $1 never announced an address"; cat "$WORK/replica$1.err"; exit 1; }
}

start_replica 1; R1=$ADDR
start_replica 2; R2=$ADDR
start_replica 3; R3=$ADDR

: > "$WORK/results.txt"
for FLEET in "http://$R1" "http://$R1,http://$R2" "http://$R1,http://$R2,http://$R3"; do
    N=$(echo "$FLEET" | awk -F, '{print NF}')
    "$BINDIR/twocs" sweep-fan -replicas "$FLEET" \
        -scenarios "$SCENARIOS" -flopbw-max 10 \
        -out "$WORK/fan$N.ndjson" 2> "$WORK/fan$N.err"
    SUM=$(sed -n 's/^twocs: fanned //p' "$WORK/fan$N.err")
    [ -n "$SUM" ] || { echo "no fan summary for fleet $N"; cat "$WORK/fan$N.err"; exit 1; }
    echo "$N $SUM" >> "$WORK/results.txt"
    echo "replicas=$N: $SUM" >&2
done

# All three fleets must produce the identical artifact before any
# number is recorded.
cmp "$WORK/fan1.ndjson" "$WORK/fan2.ndjson"
cmp "$WORK/fan1.ndjson" "$WORK/fan3.ndjson"

python3 - "$WORK/results.txt" "$OUT" <<'EOF'
import json, os, re, sys

results = []
for line in open(sys.argv[1]):
    # "N <rows> rows over <n> replicas to <path> (<shards> shards, <r> retries, <d> retired, <rps> rows/s)"
    m = re.match(r"(\d+) (\d+) rows over \d+ replicas to \S+ "
                 r"\((\d+) shards, (\d+) retries, (\d+) retired, (\d+) rows/s\)", line)
    assert m, f"unparseable fan summary: {line!r}"
    n, rows, shards, retries, retired, rps = map(int, m.groups())
    results.append({"replicas": n, "rows": rows, "shards": shards,
                    "retries": retries, "retired": retired, "rows_per_sec": rps})

one = next(r for r in results if r["replicas"] == 1)
three = next(r for r in results if r["replicas"] == 3)
doc = {
    "unit": {"throughput": "rows/sec"},
    "cpus": os.cpu_count(),
    "grid_rows": one["rows"],
    "results": results,
    "speedup_3v1": round(three["rows_per_sec"] / one["rows_per_sec"], 2),
}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {sys.argv[2]}: speedup_3v1={doc['speedup_3v1']} on {doc['cpus']} cpus", file=sys.stderr)
EOF
