// Ablation benchmarks for the design choices DESIGN.md calls out: the
// collective algorithm on the serialized path, wire-protocol selection,
// GEMM wave quantization, and the DP gradient bucket size.
package twocs_test

import (
	"fmt"
	"os"
	"testing"

	"twocs/internal/collective"
	"twocs/internal/dist"
	"twocs/internal/hw"
	"twocs/internal/kernels"
	"twocs/internal/model"
	"twocs/internal/opmodel"
	"twocs/internal/profile"
	"twocs/internal/report"
	"twocs/internal/tensor"
	"twocs/internal/units"
)

// BenchmarkAblationCollectiveAlgo compares ring, tree and in-network
// all-reduce on the serialized path across message sizes — the §5
// discussion of PIN's 2x wire-traffic advantage.
func BenchmarkAblationCollectiveAlgo(b *testing.B) {
	path, err := collective.PathForGroup(hw.MI210Cluster(16, 1.0/8), 4)
	if err != nil {
		b.Fatal(err)
	}
	models := map[string]*collective.CostModel{}
	for _, algo := range []collective.Algorithm{collective.Ring, collective.Tree, collective.InNetwork} {
		m, err := collective.NewCostModel(path, algo)
		if err != nil {
			b.Fatal(err)
		}
		models[algo.String()] = m
	}
	sizes := []units.Bytes{
		units.Bytes(64 * units.KiB), units.Bytes(4 * units.MiB),
		units.Bytes(256 * units.MiB), units.Bytes(1 * units.Giga),
	}
	printOnce(b, "abl-algo", func() {
		t := report.NewTable("Ablation: all-reduce algorithm (16 ranks)",
			"size", "ring", "tree", "in-network")
		for _, sz := range sizes {
			row := []string{units.Bytes(float64(sz)).String()}
			for _, name := range []string{"ring", "tree", "in-network"} {
				d, err := models[name].AllReduce(16, sz)
				if err != nil {
					b.Fatal(err)
				}
				row = append(row, d.String())
			}
			t.AddRow(row...)
		}
		t.Render(os.Stdout)
		fmt.Println("  trees win at tiny sizes (latency), rings at scale (bandwidth);")
		fmt.Println("  in-network reduction halves wire traffic (paper §5 Technique 2).")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			if _, err := m.AllReduce(16, units.Bytes(256*units.MiB)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationProtocolSelection disables the LL/LL128/Simple wire
// protocols to show they are what makes small messages bandwidth-poor —
// the effect behind Figure 11's higher overlap at small H.
func BenchmarkAblationProtocolSelection(b *testing.B) {
	base, err := collective.PathForGroup(hw.MI210Cluster(1, 0), 4)
	if err != nil {
		b.Fatal(err)
	}
	ideal := base
	ideal.Protocols = nil // one ideal protocol: no overhead, full bandwidth
	withM, err := collective.NewCostModel(base, collective.Ring)
	if err != nil {
		b.Fatal(err)
	}
	withoutM, err := collective.NewCostModel(ideal, collective.Ring)
	if err != nil {
		b.Fatal(err)
	}
	printOnce(b, "abl-proto", func() {
		t := report.NewTable("Ablation: wire-protocol selection (ring all-reduce, 4 ranks)",
			"size", "with protocols", "ideal wire", "slowdown")
		for _, sz := range []units.Bytes{
			units.Bytes(64 * units.KiB), units.Bytes(1 * units.MiB),
			units.Bytes(16 * units.MiB), units.Bytes(256 * units.MiB),
		} {
			tw, err := withM.AllReduce(4, sz)
			if err != nil {
				b.Fatal(err)
			}
			to, err := withoutM.AllReduce(4, sz)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(units.Bytes(float64(sz)).String(), tw.String(), to.String(),
				fmt.Sprintf("%.2fx", float64(tw)/float64(to)))
		}
		t.Render(os.Stdout)
		fmt.Println("  small messages run far below peak bandwidth — without this the")
		fmt.Println("  Figure 11 small-H inflation and Figure 15c error would vanish.")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := withM.AllReduce(4, units.Bytes(1*units.MiB)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWaveQuantization shows the GEMM-model non-ideality
// that drives part of the Figure 15a projection error.
func BenchmarkAblationWaveQuantization(b *testing.B) {
	on, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		b.Fatal(err)
	}
	off, err := kernels.NewCalculator(hw.MI210, kernels.WithoutWaveQuantization())
	if err != nil {
		b.Fatal(err)
	}
	// A grid one tile past a wave boundary vs one exactly on it.
	aligned := tensor.MatMul{M: 128 * 104, N: 128, K: 4096, DT: tensor.FP32}
	ragged := tensor.MatMul{M: 128 * 105, N: 128, K: 4096, DT: tensor.FP32}
	printOnce(b, "abl-wave", func() {
		t := report.NewTable("Ablation: GEMM wave quantization (104 CUs)",
			"grid", "quantized", "ideal", "penalty")
		for _, g := range []struct {
			name string
			m    tensor.MatMul
		}{{"104 tiles (aligned)", aligned}, {"105 tiles (ragged)", ragged}} {
			tq, err := on.GEMMTime(g.m)
			if err != nil {
				b.Fatal(err)
			}
			ti, err := off.GEMMTime(g.m)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(g.name, tq.String(), ti.String(),
				fmt.Sprintf("%.2fx", float64(tq)/float64(ti)))
		}
		t.Render(os.Stdout)
		fmt.Println("  the ragged grid pays for a nearly empty second wave — runtime is")
		fmt.Println("  not a smooth function of size, which is why naive linear/quadratic")
		fmt.Println("  projections carry the Figure 15 error.")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := on.GEMMTime(ragged); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBucketSize sweeps the DP gradient bucket size: small
// buckets start reducing earlier, large buckets amortize latency but
// delay and expose the tail (Fig 3a's overlap mechanics).
func BenchmarkAblationBucketSize(b *testing.B) {
	cfg := model.Config{
		Name: "bucket", Kind: model.Decoder, Layers: 16, Hidden: 2048,
		FCDim: 8192, Heads: 32, Vocab: 1000, SeqLen: 1024, Batch: 4,
		DT: tensor.FP32,
	}
	plan := dist.Plan{
		Model: cfg, TP: 4, DP: 4,
		Cluster: hw.MI210Cluster(4, 1.0/8),
		Algo:    collective.Ring,
	}
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		b.Fatal(err)
	}
	timer, err := dist.NewTimer(plan, calc)
	if err != nil {
		b.Fatal(err)
	}
	run := func(bucket int) *dist.IterationReport {
		rep, _, err := dist.RunIteration(plan, timer, dist.ScheduleOptions{DPBucketLayers: bucket})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	printOnce(b, "abl-bucket", func() {
		t := report.NewTable("Ablation: DP gradient bucket size (layers per all-reduce)",
			"bucket", "makespan", "DP comm", "DP exposed")
		for _, bucket := range []int{1, 2, 4, 8, 16} {
			rep := run(bucket)
			t.AddRow(fmt.Sprint(bucket), rep.Makespan.String(),
				rep.DPCommTime.String(), rep.ExposedDPComm.String())
		}
		t.Render(os.Stdout)
		fmt.Println("  bucketing trades per-collective latency against tail exposure;")
		fmt.Println("  one giant bucket serializes the whole gradient volume at the end.")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(4)
	}
}

// BenchmarkAblationFusedAttention compares the attention sub-layer under
// the classic three-kernel lowering vs a FlashAttention-style fused
// kernel, across sequence lengths — the kind of Transformer evolution the
// paper's §6.4 expects the methodology to absorb.
func BenchmarkAblationFusedAttention(b *testing.B) {
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		b.Fatal(err)
	}
	attnTime := func(cfg model.Config) units.Seconds {
		plan := dist.Plan{
			Model: cfg, TP: 4, DP: 1,
			Cluster: hw.MI210Cluster(1, 0), Algo: collective.Ring,
		}
		timer, err := dist.NewTimer(plan, calc)
		if err != nil {
			b.Fatal(err)
		}
		ops, err := model.LayerForwardOps(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		var total units.Seconds
		for _, op := range ops {
			if op.Sublayer != "attn" || op.Kind.IsComm() {
				continue
			}
			d, err := timer.Time(op)
			if err != nil {
				b.Fatal(err)
			}
			total += d
		}
		return total
	}
	mk := func(sl int, fused bool) model.Config {
		return model.Config{
			Name: "attn", Kind: model.Decoder, Layers: 1, Hidden: 4096,
			FCDim: 16384, Heads: 32, Vocab: 1000, SeqLen: sl, Batch: 1,
			DT: tensor.FP32, FusedAttention: fused,
		}
	}
	printOnce(b, "abl-fused", func() {
		t := report.NewTable("Ablation: fused (FlashAttention-style) vs unfused attention core (H=4K, fwd)",
			"SL", "unfused", "fused", "speedup")
		for _, sl := range []int{1024, 2048, 4096, 8192, 16384} {
			tu := attnTime(mk(sl, false))
			tf := attnTime(mk(sl, true))
			t.AddRow(fmt.Sprint(sl), tu.String(), tf.String(),
				fmt.Sprintf("%.2fx", float64(tu)/float64(tf)))
		}
		t.Render(os.Stdout)
		fmt.Println("  fusion removes the quadratic score-matrix traffic, so its advantage")
		fmt.Println("  grows with sequence length — evolving compute shrinks while the")
		fmt.Println("  serialized all-reduces stay, amplifying the paper's conclusion.")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attnTime(mk(4096, true))
	}
}

// BenchmarkAblationHierarchicalAllReduce compares flat vs hierarchical
// (intra-node RS, inter-node AR, intra-node AG) all-reduce across node
// counts — the structure multi-node DP deployments rely on (§4.3.7).
func BenchmarkAblationHierarchicalAllReduce(b *testing.B) {
	bytes := units.Bytes(256 * units.MiB)
	printOnce(b, "abl-hier", func() {
		t := report.NewTable("Ablation: hierarchical vs flat all-reduce (256 MiB, inter-node bw = intra/8)",
			"nodes", "flat ring", "hierarchical", "speedup")
		for _, nodes := range []int{2, 4, 8, 16} {
			h, err := collective.NewHierarchicalModel(hw.MI210Cluster(nodes, 1.0/8), collective.Ring)
			if err != nil {
				b.Fatal(err)
			}
			flat, err := h.FlatAllReduce(nodes, bytes)
			if err != nil {
				b.Fatal(err)
			}
			hier, err := h.AllReduce(nodes, bytes)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprint(nodes), flat.String(), hier.String(),
				fmt.Sprintf("%.2fx", float64(flat)/float64(hier)))
		}
		t.Render(os.Stdout)
	})
	h, err := collective.NewHierarchicalModel(hw.MI210Cluster(8, 1.0/8), collective.Ring)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.AllReduce(8, bytes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBaselineSize tests the paper's own remedy for
// projection error (§4.3.8: "this error may improve by using a larger
// baseline model"): calibrate the operator model from baselines of
// different widths and validate against the same large targets.
func BenchmarkAblationBaselineSize(b *testing.B) {
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		b.Fatal(err)
	}
	calibrateAt := func(h int) (*opmodel.Model, *dist.Timer) {
		cfg := model.Config{
			Name: fmt.Sprintf("base-H%d", h), Kind: model.Encoder,
			Layers: 4, Hidden: h, FCDim: 4 * h, Heads: h / 64,
			Vocab: 10_000, SeqLen: 512, Batch: 16, DT: tensor.FP32,
		}
		plan := dist.Plan{Model: cfg, TP: 4, DP: 1,
			Cluster: hw.MI210Cluster(1, 0), Algo: collective.Ring}
		timer, err := dist.NewTimer(plan, calc)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := profile.Iteration(cfg, 4, timer)
		if err != nil {
			b.Fatal(err)
		}
		m, err := opmodel.Calibrate(prof)
		if err != nil {
			b.Fatal(err)
		}
		return m, timer
	}
	errAt := func(m *opmodel.Model, timer *dist.Timer) float64 {
		v, err := opmodel.ValidateOpSweep(m, timer, "fwd.fc.fc1", "gemm-vs-h", 3, opmodel.SweepH)
		if err != nil {
			b.Fatal(err)
		}
		return v.GeoMeanErr
	}
	printOnce(b, "abl-baseline", func() {
		t := report.NewTable("Ablation: baseline model size vs projection error (GEMM-vs-H sweep)",
			"baseline H", "geomean err %")
		for _, h := range []int{512, 1024, 2048, 4096} {
			m, timer := calibrateAt(h)
			t.AddRow(fmt.Sprint(h), fmt.Sprintf("%.1f", errAt(m, timer)*100))
		}
		t.Render(os.Stdout)
		fmt.Println("  larger baselines start in the efficient regime, so scaling from")
		fmt.Println("  them extrapolates better — the paper's §4.3.8 suggestion, confirmed.")
	})
	m, timer := calibrateAt(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errAt(m, timer)
	}
}

// BenchmarkAblationLatencyAwareAR compares the paper's linear collective
// projection against the two-term latency-aware refinement as the group
// size extrapolates far beyond the calibration group (4 ranks).
func BenchmarkAblationLatencyAwareAR(b *testing.B) {
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		b.Fatal(err)
	}
	e, err := model.LookupZoo("BERT")
	if err != nil {
		b.Fatal(err)
	}
	plan := dist.Plan{Model: e.Config, TP: 4, DP: 1,
		Cluster: hw.MI210Cluster(1, 0), Algo: collective.Ring}
	timer, err := dist.NewTimer(plan, calc)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := profile.Iteration(e.Config, 4, timer)
	if err != nil {
		b.Fatal(err)
	}
	var refs []opmodel.ARReference
	for _, sz := range []units.Bytes{
		units.Bytes(1 * units.MiB), units.Bytes(8 * units.MiB),
		units.Bytes(64 * units.MiB), units.Bytes(256 * units.MiB),
	} {
		d, err := timer.Time(model.OpDesc{Kind: model.TPAllReduce, Bytes: sz})
		if err != nil {
			b.Fatal(err)
		}
		refs = append(refs, opmodel.ARReference{Bytes: sz, Group: 4, Time: d})
	}
	plain, err := opmodel.Calibrate(prof, opmodel.WithARSweep(refs))
	if err != nil {
		b.Fatal(err)
	}
	aware, err := opmodel.Calibrate(prof, opmodel.WithARSweep(refs), opmodel.WithLatencyAwareAR())
	if err != nil {
		b.Fatal(err)
	}
	truth, err := collective.NewCostModel(timer.TPModel.Path, collective.Ring)
	if err != nil {
		b.Fatal(err)
	}
	bytes := units.Bytes(1 * units.GiB)
	printOnce(b, "abl-latar", func() {
		t := report.NewTable("Ablation: linear vs latency-aware all-reduce projection (1 GiB, calibrated at 4 ranks)",
			"ranks", "ground truth", "linear err %", "latency-aware err %")
		for _, n := range []int{8, 16, 64, 256} {
			want, err := truth.AllReduce(n, bytes)
			if err != nil {
				b.Fatal(err)
			}
			pp, err := plain.ProjectAllReduce(bytes, n)
			if err != nil {
				b.Fatal(err)
			}
			pa, err := aware.ProjectAllReduce(bytes, n)
			if err != nil {
				b.Fatal(err)
			}
			t.AddRow(fmt.Sprint(n), want.String(),
				fmt.Sprintf("%.1f", 100*relErr(float64(pp), float64(want))),
				fmt.Sprintf("%.1f", 100*relErr(float64(pa), float64(want))))
		}
		t.Render(os.Stdout)
		fmt.Println("  the linear model scales latency by the bandwidth factor and falls")
		fmt.Println("  apart at large groups; charging latency per ring step fixes it.")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aware.ProjectAllReduce(bytes, 256); err != nil {
			b.Fatal(err)
		}
	}
}
