// Command twocslint runs the repo's static-analysis suite — the
// invariants go vet cannot see. It loads every package in the module
// with the standard library's go/parser + go/types (no external
// dependencies, matching the module's empty require list) and runs:
//
//	unitcheck  dimensional safety of the internal/units algebra
//	floatcmp   no ==/!= on float64-backed values outside approved helpers
//	detrange   no map-ordered iteration feeding deterministic output
//	lockcheck  '// guarded by <mu>' fields accessed only under the lock,
//	           interprocedurally through same-receiver helper methods
//	sweeppure  no mutation of captured state in parallel.Map closures
//	simscratch no retention of simulator scratch state across runs
//	hotalloc   //lint:hotpath functions and everything they transitively
//	           call are provably allocation-free in steady state
//	ctxflow    context.Context threads through library call chains; no
//	           context.Background()/TODO() outside main and facades
//	sinkclose  stream.Sink, os.File and pprof acquisitions are released
//	           on every path
//
// The last four are interprocedural: they share one module-wide call
// graph with per-function summaries (internal/lint/flow) built from the
// same go/types data.
//
// Usage:
//
//	twocslint [-analyzers name,name] [-tests=false] [pattern ...]
//
// Patterns are directories relative to the module root, or "./..." to
// walk the whole tree (the default). Exit status: 0 clean, 1 findings,
// 2 load or usage failure.
//
// Annotation vocabulary (all in doc comments):
//
//	//lint:hotpath
//	    declares a function steady-state allocation-free; hotalloc
//	    proves the claim over its whole transitive call closure, and
//	    the allocs/op==0 benchmarks cross-check it dynamically.
//	//lint:ctxfacade <reason>
//	    allowlists a deliberate non-context compatibility entry point;
//	    ctxflow requires the reason and stops severance propagation at
//	    the facade.
//	//lint:ignore <analyzer> <why this is safe>
//	    suppresses one finding, on the offending line, the line above
//	    it, or the head line of the innermost enclosing statement.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"twocs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("twocslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzerNames := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	includeTests := fs.Bool("tests", true, "also analyze _test.go files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := lint.ByName(*analyzerNames)
	if err != nil {
		fmt.Fprintln(stderr, "twocslint:", err)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "twocslint:", err)
		return 2
	}
	root, modulePath, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "twocslint:", err)
		return 2
	}
	loader := &lint.Loader{Dir: root, ModulePath: modulePath, IncludeTests: *includeTests}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "twocslint:", err)
		return 2
	}

	loadFailed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "twocslint: %s: %v\n", pkg.Path, terr)
			loadFailed = true
		}
	}
	if loadFailed {
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "twocslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
