package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twocs/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestCleanTreeExitsZero is the acceptance gate: the final tree must
// lint clean.
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("twocslint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run should print nothing, got:\n%s", out.String())
	}
}

// TestFixtureViolationsExitNonZero re-introduces known violations by
// pointing the driver at a lint fixture directory: the process contract
// (exit 1, positioned file:line:col diagnostics) is what CI gates on.
func TestFixtureViolationsExitNonZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-analyzers", "floatcmp", "internal/lint/testdata/src/floatcmp"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"floatcmp.go:10:", "exact-equality", "finding(s)"} {
		if !strings.Contains(out.String()+errOut.String(), want) {
			t.Errorf("output missing %q\nstdout:\n%s\nstderr:\n%s", want, out.String(), errOut.String())
		}
	}
}

// TestGoldenOutput pins the CLI's output byte-for-byte: sorted by
// (file, line, column, analyzer, message), module-relative paths, one
// finding per line. Byte-stable output is what makes the lint step
// diffable in CI; if a message format changes deliberately, regenerate
// with `go test ./cmd/twocslint -run Golden -update`.
func TestGoldenOutput(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := lint.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	// run() resolves and prints paths relative to the working directory;
	// the golden file is recorded from the module root.
	t.Chdir(root)

	goldenPath := filepath.Join(root, "cmd", "twocslint", "testdata", "hotalloc.golden")
	args := []string{"-analyzers", "hotalloc", "internal/lint/testdata/src/hotalloc"}

	var first strings.Builder
	if code := run(args, &first, &strings.Builder{}); code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has findings)", code)
	}
	var second strings.Builder
	if code := run(args, &second, &strings.Builder{}); code != 1 {
		t.Fatalf("second run exit = %d, want 1", code)
	}
	if first.String() != second.String() {
		t.Fatalf("output is not deterministic across runs:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}

	if *update {
		if err := os.WriteFile(goldenPath, []byte(first.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if intended):\n--- got\n%s--- want\n%s",
			goldenPath, first.String(), string(want))
	}
}

// TestBadAnalyzerNameExitsTwo pins usage failures to exit code 2.
func TestBadAnalyzerNameExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nosuch", "internal/units"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr missing unknown-analyzer message: %s", errOut.String())
	}
}
