package main

import (
	"strings"
	"testing"
)

// TestCleanTreeExitsZero is the acceptance gate: the final tree must
// lint clean.
func TestCleanTreeExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("twocslint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run should print nothing, got:\n%s", out.String())
	}
}

// TestFixtureViolationsExitNonZero re-introduces known violations by
// pointing the driver at a lint fixture directory: the process contract
// (exit 1, positioned file:line:col diagnostics) is what CI gates on.
func TestFixtureViolationsExitNonZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-analyzers", "floatcmp", "internal/lint/testdata/src/floatcmp"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"floatcmp.go:10:", "exact-equality", "finding(s)"} {
		if !strings.Contains(out.String()+errOut.String(), want) {
			t.Errorf("output missing %q\nstdout:\n%s\nstderr:\n%s", want, out.String(), errOut.String())
		}
	}
}

// TestBadAnalyzerNameExitsTwo pins usage failures to exit code 2.
func TestBadAnalyzerNameExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nosuch", "internal/units"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr missing unknown-analyzer message: %s", errOut.String())
	}
}
