package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe to read while the daemon
// goroutine is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs runCtx on a free port and waits for the listener.
// The returned stop function cancels the run context (the SIGTERM
// path) and waits for a clean exit.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var errw syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runCtx(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &errw)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for boundAddr() == "" {
		select {
		case err := <-done:
			t.Fatalf("daemon exited during startup: %v\nstderr: %s", err, errw.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never bound a listener\nstderr: %s", errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	addr := boundAddr()
	if !strings.Contains(errw.String(), "twocsd: listening on http://") {
		t.Fatalf("missing listen announcement: %s", errw.String())
	}
	return addr, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit after context cancel")
			return nil
		}
	}
}

// TestDaemonLifecycle: the daemon starts, announces its address,
// answers the API and the debug plane, and a canceled run context (the
// SIGTERM path) shuts it down leak-free.
func TestDaemonLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	addr, stop := startDaemon(t)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post("http://"+addr+"/v1/study", "application/json",
		strings.NewReader(`{"h":[1024],"sl":[1024],"tp":[4,8],"flopbw":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"scenarios"`) {
		t.Fatalf("study: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "twocs_serve_cache_miss 1") {
		t.Fatalf("/metrics lacks the study's cache miss:\n%s", metrics)
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if boundAddr() != "" {
		t.Fatal("listen address still published after shutdown")
	}
	// Leak check: give the runtime a moment, then require the goroutine
	// count to settle back near the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, n)
	}
}

func TestDaemonRejectsArgs(t *testing.T) {
	var errw bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := runCtx(ctx, []string{"-addr", "127.0.0.1:0", "stray"}, &errw); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := runCtx(ctx, []string{"-no-such-flag"}, &errw); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
