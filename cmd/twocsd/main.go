// Command twocsd is the long-running analysis daemon: the paper's
// strategy — profile one baseline, then project the design space — run
// as a service. Startup pays the expensive part once (the BERT baseline
// profile on the paper's MI210 node and the process-wide compiled
// caches); after that every POST is a projection over memoized state.
//
// Usage:
//
//	twocsd [-addr :7077] [-workers N] [tuning flags]
//
// Endpoints:
//
//	POST /v1/study   comm-fraction points + crossover tables as JSON;
//	                 cached by canonical request hash (X-Twocsd-Cache
//	                 says hit or miss); a "model" field selects any zoo
//	                 model (analyzers build lazily and are memoized)
//	POST /v1/sweep   the full grid streamed as NDJSON rows ending in a
//	                 #trailer; one sweep at a time, live on /progress.
//	                 With "lo"/"hi" the response is one [lo,hi) row-range
//	                 shard of the grid (global indices preserved), the
//	                 unit `twocs sweep-fan` distributes over replicas
//	POST /v1/plan    the normalized spec and exact row count of a sweep
//	                 without running it — how a fan-out coordinator
//	                 plans its shards
//	/healthz /metrics /metrics.json /progress /debug/pprof/
//	                 the same observability plane as `twocs -http`
//
// SIGINT/SIGTERM drain gracefully: the run context is every request
// context's parent, so in-flight sweeps collapse into well-formed
// partial artifacts (canceled rows as nulls, trailer with the reason)
// while the listener refuses new work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/model"
	"twocs/internal/serve"
	"twocs/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := runCtx(ctx, os.Args[1:], os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twocsd:", err)
		os.Exit(1)
	}
}

// listenAddr publishes the bound listen address while the daemon is
// live ("" otherwise); tests poll it to reach a :0 listener.
var listenAddr atomic.Value // of string

func boundAddr() string {
	if v, ok := listenAddr.Load().(string); ok {
		return v
	}
	return ""
}

func runCtx(ctx context.Context, args []string, errw io.Writer) error {
	fs := flag.NewFlagSet("twocsd", flag.ContinueOnError)
	fs.SetOutput(errw)
	def := serve.DefaultConfig()
	addr := fs.String("addr", ":7077", "listen address (\":0\" picks a free port)")
	workers := fs.Int("workers", 0, "worker goroutines per grid request (0 = all CPUs)")
	cacheEntries := fs.Int("cache-entries", def.CacheEntries, "study cache entry bound (<= 0 disables)")
	cacheBytes := fs.Int64("cache-bytes", def.CacheBytes, "study cache total-bytes bound (<= 0 disables)")
	rate := fs.Float64("rate", def.Rate, "admission rate in requests/second (<= 0 disables)")
	burst := fs.Int("burst", def.Burst, "admission burst capacity")
	inflight := fs.Int("inflight", def.MaxInflight, "max concurrently admitted API requests")
	studyTimeout := fs.Duration("study-timeout", def.StudyTimeout, "per-request study computation deadline")
	sweepTimeout := fs.Duration("sweep-timeout", def.SweepTimeout, "per-request sweep streaming deadline")
	flushEvery := fs.Int64("flush-every", def.FlushEvery, "sweep NDJSON rows per chunked flush")
	sample := fs.Duration("sample", time.Second, "metrics sampler interval (<= 0 disables)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (twocsd takes only flags)", fs.Arg(0))
	}

	cfg := def
	cfg.CacheEntries = *cacheEntries
	cfg.CacheBytes = *cacheBytes
	cfg.Rate = *rate
	cfg.Burst = *burst
	cfg.MaxInflight = *inflight
	cfg.StudyTimeout = *studyTimeout
	cfg.SweepTimeout = *sweepTimeout
	cfg.FlushEvery = *flushEvery

	// Process-wide telemetry: one collector and one progress tracker for
	// the daemon's lifetime, so the analyzer's spans, the stream engine's
	// progress hooks, and the request counters all land on the same
	// /metrics page.
	col := telemetry.NewCollector()
	telemetry.Enable(col)
	defer telemetry.Enable(nil)
	prog := telemetry.NewProgress()
	telemetry.EnableProgress(prog)
	defer telemetry.EnableProgress(nil)

	var sampler *telemetry.Sampler
	if *sample > 0 {
		sampler = telemetry.NewSampler(col, *sample, 0)
		sampler.Start()
		defer sampler.Stop()
	}

	// The expensive once-per-process step: baseline profile + calibrated
	// operator model (§4.3.1), shared by every request thereafter.
	e, err := model.LookupZoo("BERT")
	if err != nil {
		return err
	}
	a, err := core.NewAnalyzer(hw.MI210Cluster(1, 0), e.Config, 4)
	if err != nil {
		return err
	}
	a.Workers = *workers

	s := serve.New(a, cfg, col, sampler)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Every request context descends from the run context: a signal
		// cancels in-flight computations (sweeps degrade to partial
		// artifacts with canceled trailers) before the drain below.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	listenAddr.Store(ln.Addr().String())
	defer listenAddr.Store("")
	fmt.Fprintf(errw, "twocsd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener died on its own; nothing left to drain.
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(errw, "twocsd: shutting down\n")
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
	defer cancel()
	sdErr := srv.Shutdown(sctx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return sdErr
}
