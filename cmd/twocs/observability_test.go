package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for the heartbeat sink:
// the heartbeat goroutine writes while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestObservabilityShutdownHygiene is the shutdown satellite: a run
// with the full observability plane armed (-http, -sample, -progress)
// that dies on -timeout must still exit with the partial-results code,
// flush its -trace artifact, stop the debug server (address cleared,
// scrape refused), and leave no sampler/server/heartbeat goroutines.
func TestObservabilityShutdownHygiene(t *testing.T) {
	hb := &syncBuffer{}
	oldHB := heartbeatSink
	heartbeatSink = hb
	defer func() { heartbeatSink = oldHB }()

	before := runtime.NumGoroutine()
	trace := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	err := run([]string{
		"-timeout", "300ms",
		"-http", "127.0.0.1:0",
		"-sample", "20ms",
		"-progress", "20ms",
		"-trace", trace,
		"sweep-stream", "-scenarios", "4000", "-out", os.DevNull,
	}, &out)
	if exitCode(err) != 3 {
		t.Fatalf("want partial-results exit 3, got %v", err)
	}

	// The PR 4 deferred flush still ran: the trace is valid JSON.
	data, readErr := os.ReadFile(trace)
	if readErr != nil {
		t.Fatalf("trace not flushed: %v", readErr)
	}
	var events []map[string]any
	if jsonErr := json.Unmarshal(data, &events); jsonErr != nil {
		t.Fatalf("flushed trace is not valid JSON: %v", jsonErr)
	}

	// The server is down: its published address is cleared.
	if addr := debugServerAddr(); addr != "" {
		t.Errorf("debug server address still published after run: %q", addr)
	}

	// The final heartbeat reports the canceled stream.
	lines := strings.Split(strings.TrimSpace(hb.String()), "\n")
	var last map[string]any
	if jsonErr := json.Unmarshal([]byte(lines[len(lines)-1]), &last); jsonErr != nil {
		t.Fatalf("final heartbeat invalid: %v\n%s", jsonErr, lines[len(lines)-1])
	}
	if last["event"] != "progress" || last["done"] != true || last["complete"] != false {
		t.Errorf("final heartbeat = %v, want a done, incomplete progress event", last)
	}

	// No goroutine leak: sampler, server and heartbeat loops all exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines grew from %d to %d after the run", before, now)
	}
}

// TestDebugServerServesLiveRun scrapes a run mid-flight: while a large
// sweep-stream runs in a goroutine, the test polls debugServerAddr,
// then asserts /healthz, /metrics (well-formed Prometheus text with a
// nonzero rows counter), /progress and /metrics.json all answer live.
func TestDebugServerServesLiveRun(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		var out strings.Builder
		done <- run([]string{
			"-timeout", "10s",
			"-http", "127.0.0.1:0",
			"-sample", "10ms",
			"sweep-stream", "-scenarios", "4000", "-out", os.DevNull,
		}, &out)
	}()

	// Wait for the server to come up and the stream to make progress.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if addr = debugServerAddr(); addr != "" {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("debug server never published an address")
	}
	base := "http://" + addr

	httpGet := func(path string) string {
		t.Helper()
		var lastErr error
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			resp, err := http.Get(base + path)
			if err != nil {
				lastErr = err
				time.Sleep(5 * time.Millisecond)
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
			}
			return string(body)
		}
		t.Fatalf("GET %s never answered: %v", path, lastErr)
		return ""
	}

	if body := httpGet("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	// Poll /metrics until the stream has emitted rows, then check shape.
	var metrics string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		metrics = httpGet("/metrics")
		if strings.Contains(metrics, "twocs_parallel_stream_rows") &&
			!strings.Contains(metrics, "twocs_parallel_stream_rows 0\n") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE twocs_parallel_stream_rows counter",
		"# TYPE twocs_runtime_goroutines gauge",
		"twocs_progress_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	var prog struct {
		Label string `json:"label"`
		Total int64  `json:"total"`
	}
	if err := json.Unmarshal([]byte(httpGet("/progress")), &prog); err != nil {
		t.Fatalf("/progress invalid JSON: %v", err)
	}
	if prog.Label != "sweep-stream" || prog.Total == 0 {
		t.Errorf("/progress = %+v", prog)
	}

	var mj struct {
		Series []struct {
			ElapsedS float64 `json:"elapsed_s"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(httpGet("/metrics.json")), &mj); err != nil {
		t.Fatalf("/metrics.json invalid JSON: %v", err)
	}
	if len(mj.Series) == 0 {
		t.Error("/metrics.json has no sampler series")
	}

	// Let the run finish (or time out); either exit is fine here — the
	// shutdown test owns the exit-code contract.
	if err := <-done; err != nil && exitCode(err) != 3 {
		t.Fatalf("run failed: %v", err)
	}
	if addr := debugServerAddr(); addr != "" {
		t.Errorf("address still published after run: %q", addr)
	}
}

// TestObservabilityFlagsRejectBadAddr: a bad -http address fails the
// run up front instead of silently running without a server.
func TestObservabilityFlagsRejectBadAddr(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-http", "256.256.256.256:0", "zoo"}, &out)
	if err == nil {
		t.Fatal("bogus -http address accepted")
	}
	if !strings.Contains(err.Error(), "listen") {
		t.Errorf("error does not name the listen failure: %v", err)
	}
}
