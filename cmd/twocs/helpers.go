package main

import (
	"twocs/internal/core"
	"twocs/internal/dist"
	"twocs/internal/hw"
	"twocs/internal/model"
	"twocs/internal/opmodel"
	"twocs/internal/profile"
	"twocs/internal/units"
)

// distEstimates returns the Figure 9b rows.
func distEstimates() ([]dist.TPEstimate, error) {
	return dist.EstimateRequiredTP(model.Zoo())
}

// runValidationSuite runs the five Figure 15 sweeps against the standard
// analyzer baseline.
func runValidationSuite() ([]opmodel.Validation, error) {
	a, err := newAnalyzer()
	if err != nil {
		return nil, err
	}
	truth, err := a.GroundTruthTimer(a.BaseCfg, a.BaseTP, hw.Identity())
	if err != nil {
		return nil, err
	}
	var out []opmodel.Validation
	sweeps := []struct {
		op, name string
		mutate   func(model.Config, int) (model.Config, float64)
	}{
		{"fwd.fc.fc1", "gemm-vs-sl", opmodel.SweepSL},
		{"fwd.fc.fc1", "gemm-vs-h", opmodel.SweepH},
		{"fwd.attn.layernorm", "layernorm-vs-sl", opmodel.SweepSL},
		{"fwd.attn.layernorm", "layernorm-vs-h", opmodel.SweepH},
	}
	for _, s := range sweeps {
		v, err := opmodel.ValidateOpSweep(a.OpModel, truth, s.op, s.name, 4, s.mutate)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	sizes := []units.Bytes{
		units.Bytes(512 * units.KiB), units.Bytes(2 * units.MiB),
		units.Bytes(8 * units.MiB), units.Bytes(32 * units.MiB),
		units.Bytes(128 * units.MiB), units.Bytes(512 * units.MiB),
	}
	v, err := opmodel.ValidateAllReduce(a.OpModel, truth, a.BaseTP, sizes)
	if err != nil {
		return nil, err
	}
	return append(out, v), nil
}

// profilingSpeedup reproduces the §4.3.8 cost comparison: the exhaustive
// ledger prices an end-to-end profiling run of every Table 3 sweep
// configuration (at realistic layer counts), the strategy ledger holds
// what the analyzer actually spent. The second return value is the ROI
// speedup — a full iteration over just its backward pass, the fraction
// ROI extraction avoids executing.
func profilingSpeedup() (profile.SpeedupReport, float64, error) {
	a, err := newAnalyzer()
	if err != nil {
		return profile.SpeedupReport{}, 0, err
	}
	// Layer counts grow with width across real models (Table 2: 24
	// layers at H=1K up to ~120 at H=20K); the exhaustive grid prices
	// every configuration at its representative depth, fanned out over
	// the sweep engine.
	exhaustive, err := a.ExhaustiveCostStudy(
		core.Table3Hs(), core.Table3SLs(), core.Table3TPs(), 1, layersFor)
	if err != nil {
		return profile.SpeedupReport{}, 0, err
	}
	// The strategy side also executes the overlapped-analysis ROIs
	// (§4.2.2 step 2a) — OverlappedSweep charges them to the ledger.
	if _, err := a.OverlappedSweep(core.Table3Hs(), core.Table3SLs(), 16, hw.Identity()); err != nil {
		return profile.SpeedupReport{}, 0, err
	}
	rep, err := profile.CompareStrategy(exhaustive, a.StrategyLedger)
	if err != nil {
		return profile.SpeedupReport{}, 0, err
	}

	// ROI speedup: iteration time over backward-only time.
	var fwd, total units.Seconds
	for _, r := range a.Baseline.Records {
		total += r.Time
		if r.Op.Phase == model.Forward {
			fwd += r.Time
		}
	}
	roiSpeedup := float64(total) / float64(total-fwd)
	return rep, roiSpeedup, nil
}

// layersFor maps hidden size to a representative depth, following the
// Table 2 trend.
func layersFor(h int) int {
	switch {
	case h <= 1024:
		return 24
	case h <= 2048:
		return 48
	case h <= 4096:
		return 78
	case h <= 8192:
		return 96
	case h <= 16384:
		return 118
	case h <= 32768:
		return 140
	default:
		return 160
	}
}
