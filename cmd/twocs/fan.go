package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"twocs/internal/serve"
	"twocs/internal/shardmap"
	"twocs/internal/stream"
)

// cmdSweepFan is sweep-stream scaled out: the same design-space grid,
// fanned over a fleet of twocsd replicas as contiguous [lo,hi) row
// shards and re-assembled locally in strict grid order. The NDJSON/CSV
// artifact is byte-identical to a single node's sweep at any replica
// count and any -shard-rows, including after a replica dies mid-run
// (its shard's remaining range resumes on a healthy one). Digests are
// reduced per shard and folded together with the reducers' Merge
// algebra rather than re-streaming every row through one chain.
func cmdSweepFan(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("sweep-fan")
	replicas := fs.String("replicas", "", "comma-separated twocsd base URLs (required), e.g. http://host1:8080,http://host2:8080")
	modelName := fs.String("model", "", "zoo model to sweep (default: the replicas' default, BERT)")
	shardRows := fs.Int64("shard-rows", shardmap.DefaultShardRows, "rows per shard (the unit of retry and buffering)")
	retries := fs.Int("retries", 4, "attempts per shard before the sweep aborts")
	out := fs.String("out", "-", "row destination: a file path, or - for stdout")
	format := fs.String("format", "ndjson", "row format: ndjson or csv")
	b := fs.Int("b", 1, "batch size")
	scenarios := fs.Int("scenarios", 0,
		"flop-vs-bw scenario count, evenly spanning 1..flopbw-max (0 = the paper's 1x/2x/4x)")
	flopbwMax := fs.Float64("flopbw-max", 4, "largest flop-vs-bw ratio when -scenarios is set")
	topK := fs.Int("topk", 0, "print the K best configurations by iteration time (0 = off)")
	pareto := fs.Bool("pareto", false, "print the (iter time, comm fraction, memory) Pareto frontier")
	marginals := fs.Bool("marginals", false, "print per-axis comm-fraction marginals")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "ndjson" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (want ndjson or csv)", *format)
	}
	if *topK < 0 {
		return fmt.Errorf("negative -topk %d", *topK)
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("sweep-fan needs -replicas (comma-separated twocsd base URLs)")
	}
	ratios, err := ratioList(*scenarios, *flopbwMax)
	if err != nil {
		return err
	}

	// Axes stay nil: the replicas fill in the paper's Table 3 grid, and
	// /v1/plan echoes the normalized spec back so every shard request
	// carries the identical (hence identically cached) grid.
	req := serve.SweepRequest{GridSpec: serve.GridSpec{
		B: *b, FlopVsBW: ratios, Model: *modelName,
	}}
	coord, err := shardmap.NewCoordinator(shardmap.Config{
		Replicas:    urls,
		ShardRows:   *shardRows,
		MaxAttempts: *retries,
		TopK:        max(*topK, 1),
	})
	if err != nil {
		return err
	}

	rowDst := w
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		rowDst = f
	}
	var writer stream.Sink
	if *format == "csv" {
		writer = stream.NewCSV(rowDst)
	} else {
		writer = stream.NewNDJSON(rowDst)
	}

	start := time.Now()
	res, sweepErr := coord.Sweep(ctx, req, writer)
	elapsed := time.Since(start)
	if res != nil && *out != "-" {
		fmt.Fprintf(os.Stderr, "twocs: fanned %d rows over %d replicas to %s (%d shards, %d retries, %d retired, %.0f rows/s)\n",
			res.Rows, len(urls), *out, res.Shards, res.Retries, res.Retired,
			float64(res.Rows)/elapsed.Seconds())
	}
	if res == nil {
		return sweepErr
	}

	// Digests summarize whatever ordered prefix the sink received, just
	// like sweep-stream's.
	if *topK > 0 {
		if err := renderTopK(w, res.Digests.TopK); err != nil {
			return err
		}
	}
	if *pareto {
		if err := renderPareto(w, res.Digests.Pareto); err != nil {
			return err
		}
	}
	if *marginals {
		if err := renderMarginals(w, res.Digests.Marginals); err != nil {
			return err
		}
	}
	return sweepErr
}
