package main

import (
	"os"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestRunNoArgs(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("missing subcommand accepted")
	}
}

func TestRunUnknown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"frobnicate"}, &b); err == nil {
		t.Error("unknown subcommand accepted")
	}
}

func TestRunHelp(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"help"}, &b); err != nil {
		t.Error(err)
	}
}

func TestCmdZoo(t *testing.T) {
	out := runCmd(t, "zoo")
	for _, want := range []string{"BERT", "PaLM", "MT-NLG", "Table 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("zoo output missing %q", want)
		}
	}
}

func TestCmdZooCSV(t *testing.T) {
	out := runCmd(t, "zoo", "-csv")
	if !strings.HasPrefix(out, "model,year,") {
		t.Errorf("csv header missing: %q", out[:40])
	}
}

func TestCmdMemory(t *testing.T) {
	out := runCmd(t, "memory")
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "gap") {
		t.Errorf("memory output:\n%s", out)
	}
}

func TestCmdAlgorithmic(t *testing.T) {
	out := runCmd(t, "algorithmic")
	if !strings.Contains(out, "slack drop vs BERT: 75.0%") {
		t.Errorf("algorithmic output missing the Fig 7 slack drop:\n%s", out)
	}
}

func TestCmdTP(t *testing.T) {
	out := runCmd(t, "tp")
	if !strings.Contains(out, "Figure 9b") || !strings.Contains(out, "MT-NLG") {
		t.Errorf("tp output:\n%s", out)
	}
}

func TestCmdSerialized(t *testing.T) {
	out := runCmd(t, "serialized", "-flopbw", "4")
	if !strings.Contains(out, "flop-vs-bw 4x") {
		t.Errorf("serialized output:\n%s", out[:200])
	}
	if strings.Count(out, "\n") < 100 {
		t.Error("expected the full sweep grid")
	}
}

func TestCmdOverlapped(t *testing.T) {
	out := runCmd(t, "overlapped", "-tp", "16")
	if !strings.Contains(out, "TP=16") {
		t.Errorf("overlapped output:\n%s", out[:200])
	}
}

func TestCmdCaseStudy(t *testing.T) {
	out := runCmd(t, "casestudy", "-layers", "4")
	if !strings.Contains(out, "inter-node DP") {
		t.Errorf("casestudy output:\n%s", out)
	}
}

func TestCmdValidate(t *testing.T) {
	out := runCmd(t, "validate")
	for _, want := range []string{"gemm-vs-sl", "allreduce-vs-size", "~11%"} {
		if !strings.Contains(out, want) {
			t.Errorf("validate output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdSpeedup(t *testing.T) {
	out := runCmd(t, "speedup")
	if !strings.Contains(out, "speedup:") || !strings.Contains(out, "ROI") {
		t.Errorf("speedup output:\n%s", out)
	}
}

func TestCmdPipeline(t *testing.T) {
	out := runCmd(t, "pipeline", "-layers", "8", "-h", "4096")
	if !strings.Contains(out, "bubble %") {
		t.Errorf("pipeline output:\n%s", out)
	}
}

func TestCmdPrecision(t *testing.T) {
	out := runCmd(t, "precision")
	for _, want := range []string{"FP32", "FP16", "FP8"} {
		if !strings.Contains(out, want) {
			t.Errorf("precision output missing %q", want)
		}
	}
}

func TestCmdTechniques(t *testing.T) {
	out := runCmd(t, "techniques")
	if !strings.Contains(out, "in-network reduction (PIN)") {
		t.Errorf("techniques output:\n%s", out)
	}
}

func TestCmdZero(t *testing.T) {
	out := runCmd(t, "zero")
	if !strings.Contains(out, "ZeRO-3") {
		t.Errorf("zero output:\n%s", out)
	}
}

func TestCmdMoE(t *testing.T) {
	out := runCmd(t, "moe")
	if !strings.Contains(out, "dense") || !strings.Contains(out, "all-to-all") {
		t.Errorf("moe output:\n%s", out)
	}
}

func TestCmdInference(t *testing.T) {
	out := runCmd(t, "inference")
	if !strings.Contains(out, "PaLM-3x") {
		t.Errorf("inference output:\n%s", out)
	}
}

func TestCmdGantt(t *testing.T) {
	out := runCmd(t, "gantt", "-layers", "2", "-h", "4096")
	for _, want := range []string{"#", "=", "~", "critical path"} {
		if !strings.Contains(out, want) {
			t.Errorf("gantt output missing %q:\n%s", want, out)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"serialized", "-nosuchflag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestCmdDiagnose(t *testing.T) {
	out := runCmd(t, "diagnose", "-h", "4096", "-tp", "16")
	if !strings.Contains(out, "layer error") || !strings.Contains(out, "fwd.fc.fc1") {
		t.Errorf("diagnose output:\n%s", out)
	}
}

func TestCmdDiagnoseJSON(t *testing.T) {
	out := runCmd(t, "diagnose", "-json")
	if !strings.Contains(out, "\"LayerErr\"") {
		t.Errorf("diagnose json output:\n%s", out[:200])
	}
}

func TestCmdMemSim(t *testing.T) {
	out := runCmd(t, "memsim", "-h", "4096", "-layers", "4")
	for _, want := range []string{"state floor", "peak", "timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("memsim output missing %q:\n%s", want, out)
		}
	}
}

func TestCalibrateProjectRoundTrip(t *testing.T) {
	path := t.TempDir() + "/cal.json"
	out := runCmd(t, "calibrate", "-o", path)
	if !strings.Contains(out, "calibrated BERT") {
		t.Errorf("calibrate output:\n%s", out)
	}
	out = runCmd(t, "project", "-calibration", path, "-h", "8192", "-tp", "16")
	if !strings.Contains(out, "comm fraction") || !strings.Contains(out, "4x") {
		t.Errorf("project output:\n%s", out)
	}
}

func TestProjectWithoutCalibration(t *testing.T) {
	out := runCmd(t, "project", "-h", "4096", "-tp", "16", "-layers", "4")
	if !strings.Contains(out, "Projection: H=4096") {
		t.Errorf("project output:\n%s", out)
	}
}

func TestProjectMissingCalibrationFile(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"project", "-calibration", "/nonexistent/x.json"}, &b); err == nil {
		t.Error("missing calibration file accepted")
	}
}

func TestCmdTimeline(t *testing.T) {
	out := runCmd(t, "timeline")
	if !strings.Contains(out, "Megatron-LM") || !strings.Contains(out, "4x (%)") {
		t.Errorf("timeline output:\n%s", out)
	}
}

func TestCmdGanttTraceExport(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	out := runCmd(t, "gantt", "-layers", "2", "-h", "4096", "-trace", path)
	if !strings.Contains(out, "chrome trace written") {
		t.Errorf("gantt output:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ph":"X"`) {
		t.Error("trace file missing events")
	}
}

func TestCmdScaling(t *testing.T) {
	out := runCmd(t, "scaling", "-h", "4096", "-layers", "2", "-devices", "64")
	if !strings.Contains(out, "tokens/s") {
		t.Errorf("scaling output:\n%s", out)
	}
}
