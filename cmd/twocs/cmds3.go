package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/memsim"
	"twocs/internal/model"
	"twocs/internal/opmodel"
	"twocs/internal/report"
)

// cmdDiagnose audits the operator-level model against ground truth for
// one target configuration, operator by operator.
func cmdDiagnose(args []string, w io.Writer) error {
	fs := newFlagSet("diagnose")
	h := fs.Int("h", 4096, "hidden dimension of the target model")
	sl := fs.Int("sl", 2048, "sequence length")
	tp := fs.Int("tp", 16, "tensor-parallel degree")
	asJSON := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, *sl, 1)
	if err != nil {
		return err
	}
	truth, err := a.GroundTruthTimer(cfg, *tp, hw.Identity())
	if err != nil {
		return err
	}
	d, err := a.OpModel.Diagnose(truth, cfg, *tp)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	t := report.NewTable(
		fmt.Sprintf("Operator-model diagnosis: H=%d SL=%d TP=%d (layer error %.1f%%, worst: %s)",
			*h, *sl, *tp, d.LayerErr*100, d.WorstOp),
		"operator", "kind", "measured", "projected", "err %", "share %")
	for _, o := range d.Ops {
		t.AddRow(o.Name, o.Kind.String(), o.Measured.String(), o.Projected.String(),
			fmt.Sprintf("%.1f", o.RelErr*100), fmt.Sprintf("%.1f", o.Share*100))
	}
	return t.Render(w)
}

// cmdMemSim simulates one iteration's per-device memory timeline.
func cmdMemSim(args []string, w io.Writer) error {
	fs := newFlagSet("memsim")
	h := fs.Int("h", 8192, "hidden dimension")
	sl := fs.Int("sl", 2048, "sequence length")
	layers := fs.Int("layers", 8, "layer count")
	tp := fs.Int("tp", 16, "tensor-parallel degree")
	checkpoint := fs.Bool("checkpoint", true, "activation checkpointing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, *sl, 1)
	if err != nil {
		return err
	}
	cfg.Layers = *layers
	mm := model.MemoryModel{StateBytesPerParam: 16, ActivationCheckpointing: *checkpoint}
	r, err := memsim.Simulate(cfg, *tp, mm)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Memory timeline: H=%d SL=%d L=%d TP=%d checkpointing=%v\n",
		*h, *sl, *layers, *tp, *checkpoint)
	fmt.Fprintf(w, "  state floor: %v   peak: %v (at %s)\n", r.StateBytes, r.PeakBytes, r.PeakOp)
	series := make([]float64, 0, len(r.Timeline))
	stride := len(r.Timeline)/100 + 1
	for i := 0; i < len(r.Timeline); i += stride {
		series = append(series, float64(r.Timeline[i].Bytes))
	}
	fmt.Fprintf(w, "  timeline: %s\n", report.Sparkline(series))
	capacity := hw.MI210.MemCapacity
	fmt.Fprintf(w, "  MI210 capacity: %v -> fits: %v\n", capacity, r.PeakBytes <= capacity)
	if tpNeed, err := memsim.RequiredTP(cfg, mm, capacity, 1, 4096); err == nil {
		fmt.Fprintf(w, "  simulated required TP on 64GiB devices: %d\n", tpNeed)
	}
	return nil
}

// cmdCalibrate profiles the baseline and writes the calibrated
// operator-level model to a JSON file: profile once, project anywhere.
func cmdCalibrate(args []string, w io.Writer) error {
	fs := newFlagSet("calibrate")
	out := fs.String("o", "calibration.json", "output path for the calibration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := a.OpModel.Save(f); err != nil {
		return err
	}
	base, tp := a.OpModel.Base()
	fmt.Fprintf(w, "calibrated %s at TP=%d -> %s (profiling cost %v)\n",
		base.Name, tp, *out, a.StrategyLedger.Total())
	return nil
}

// cmdProject loads a saved calibration (or calibrates in-process) and
// projects one configuration across hardware scenarios.
func cmdProject(args []string, w io.Writer) error {
	fs := newFlagSet("project")
	calPath := fs.String("calibration", "", "path to a saved calibration (empty: calibrate now)")
	h := fs.Int("h", 16384, "hidden dimension")
	sl := fs.Int("sl", 2048, "sequence length")
	layers := fs.Int("layers", 118, "layer count")
	tp := fs.Int("tp", 64, "tensor-parallel degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m *opmodel.Model
	if *calPath != "" {
		f, err := os.Open(*calPath)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err = opmodel.Load(f)
		if err != nil {
			return err
		}
	} else {
		a, err := newAnalyzer()
		if err != nil {
			return err
		}
		m = a.OpModel
	}
	cfg, err := core.FutureConfig(*h, *sl, 1)
	if err != nil {
		return err
	}
	cfg.Layers = *layers
	t := report.NewTable(
		fmt.Sprintf("Projection: H=%d SL=%d L=%d TP=%d", *h, *sl, *layers, *tp),
		"flop-vs-bw", "compute", "serialized comm", "comm fraction (%)")
	for _, ratio := range []float64{1, 2, 4} {
		p, err := m.ProjectIteration(cfg, *tp, evoFlag(ratio))
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%gx", ratio), p.Compute.String(),
			p.SerializedComm.String(), report.Pct(p.CommFraction()))
	}
	return t.Render(w)
}

// cmdTimeline projects the communication share of every published model
// at its era's TP degree — the paper's narrative as one table.
func cmdTimeline(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	rows, err := a.ZooTimelineCtx(ctx, model.Zoo())
	if err != nil {
		return err
	}
	t := report.NewTable("Communication share of real models at their era's TP degree",
		"model", "year", "TP", "1x (%)", "2x (%)", "4x (%)")
	for _, r := range rows {
		t.AddRow(r.Model, fmt.Sprint(r.Year), fmt.Sprint(r.TP),
			report.Pct(r.Frac1x), report.Pct(r.Frac2x), report.Pct(r.Frac4x))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "  each column: serialized comm share under 1x/2x/4x compute-vs-network")
	fmt.Fprintln(w, "  scaling. Reading down a column = model growth; across = hw evolution.")
	return nil
}

// cmdScaling sweeps TP×DP splits of a fixed device budget.
func cmdScaling(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("scaling")
	h := fs.Int("h", 8192, "hidden dimension")
	layers := fs.Int("layers", 8, "layer count to simulate")
	devices := fs.Int("devices", 256, "total device budget")
	flopbw := fs.Float64("flopbw", 1, "flop-vs-bw hardware scaling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, 2048, 1)
	if err != nil {
		return err
	}
	cfg.Layers = *layers
	rows, err := a.ScalingStudyCtx(ctx, cfg, *devices,
		[]int{2, 4, 8, 16, 32, 64, 128}, evoFlag(*flopbw))
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Throughput vs parallelism split: H=%d, %d devices, flop-vs-bw %gx",
			*h, *devices, *flopbw),
		"TP", "DP", "iteration", "tokens/s", "comm fraction (%)")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.TP), fmt.Sprint(r.DP), r.Makespan.String(),
			fmt.Sprintf("%.0f", r.TokensPerSec), report.Pct(r.CommFraction))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "  every doubling of TP trades data-parallel throughput for serialized")
	fmt.Fprintln(w, "  communication — memory pressure forces exactly this trade (§2.4).")
	return nil
}
