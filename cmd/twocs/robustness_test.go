package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"twocs/internal/parallel"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("plain failure"), 1},
		{context.Canceled, 3},
		{context.DeadlineExceeded, 3},
		{&parallel.PartialError{Cause: context.Canceled}, 3},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestTimedOutSweepExitsPartial is the documented-behavior smoke test:
// a sweep that hits -timeout must return the partial-results error
// (exit status 3 in main) after rendering the grid with "(canceled)"
// cells for the points that never ran.
func TestTimedOutSweepExitsPartial(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-timeout", "1ns", "serialized"}, &b)
	if err == nil {
		t.Fatal("timed-out sweep returned nil error")
	}
	if got := exitCode(err); got != 3 {
		t.Fatalf("exitCode = %d, want 3 (err: %v)", got, err)
	}
	var pe *parallel.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PartialError: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to DeadlineExceeded: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, canceledCell) {
		t.Errorf("partial grid missing %q cells:\n%s", canceledCell, out)
	}
	// The grid skeleton still prints: headers and at least one
	// coordinate row, so the reader sees which points are missing.
	if !strings.Contains(out, "comm fraction") {
		t.Errorf("partial output missing table header:\n%s", out)
	}
}

// TestTimedOutRunFlushesTrace checks the deferred-flush satellite: a
// run that dies on the -timeout deadline must still write its -trace
// artifact, and the file must be the valid Chrome-trace JSON array a
// healthy run would produce.
func TestTimedOutRunFlushesTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var b strings.Builder
	err := run([]string{"-timeout", "1ns", "-trace", path, "serialized"}, &b)
	if exitCode(err) != 3 {
		t.Fatalf("want the partial-results error, got: %v", err)
	}
	data, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("trace not flushed on timeout: %v", readErr)
	}
	var events []map[string]any
	if jsonErr := json.Unmarshal(data, &events); jsonErr != nil {
		t.Fatalf("flushed trace is not valid JSON: %v\n%s", jsonErr, data)
	}
}

// TestSignalCancelsSweep drives the SIGINT path main wires up: a
// NotifyContext canceled by a real signal makes runCtx return the
// partial-results error instead of hanging or crashing.
func TestSignalCancelsSweep(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("raise SIGINT: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	var b strings.Builder
	err := runCtx(ctx, []string{"serialized"}, &b)
	if exitCode(err) != 3 {
		t.Fatalf("interrupted sweep: exitCode = %d, err = %v", exitCode(err), err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to Canceled: %v", err)
	}
	if !strings.Contains(b.String(), canceledCell) {
		t.Errorf("interrupted grid missing %q cells:\n%s", canceledCell, b.String())
	}
}

func TestCmdDegradation(t *testing.T) {
	out := runCmd(t, "degradation", "-tp", "8")
	for _, want := range []string{
		"healthy", "link at 50%", "straggler 1.5x", "combined",
		"shift (pp)", "simulated iteration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("degradation output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdDegradationCSV(t *testing.T) {
	out := runCmd(t, "degradation", "-tp", "8", "-straggler", "0", "-csv")
	if !strings.HasPrefix(out, "fault,compute,") {
		t.Errorf("csv header missing: %q", out)
	}
	if strings.Contains(out, "simulated iteration") {
		t.Errorf("-straggler 0 should skip the sim comparison:\n%s", out)
	}
}
