package main

import (
	"context"
	"errors"
	"fmt"
	"io"

	"twocs/internal/collective"
	"twocs/internal/core"
	"twocs/internal/dist"
	"twocs/internal/hw"
	"twocs/internal/kernels"
	"twocs/internal/model"
	"twocs/internal/parallel"
	"twocs/internal/report"
	"twocs/internal/sim"
)

// canceledCell marks a grid cell whose projection never ran because the
// sweep was interrupted; the row's coordinates are still printed so the
// reader can see exactly which points are missing.
const canceledCell = "(canceled)"

// partialSweep classifies a sweep error: a *parallel.PartialError means
// the completed prefix is renderable.
func partialSweep(err error) (*parallel.PartialError, bool) {
	var pe *parallel.PartialError
	ok := errors.As(err, &pe)
	return pe, ok
}

// cmdDegradation runs the fault-injection study: how the paper's
// comm-fraction conclusions shift when the hardware is only mostly
// healthy (degraded link, straggler rank, per-step jitter).
func cmdDegradation(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("degradation")
	h := fs.Int("hidden", 8192, "hidden dimension")
	sl := fs.Int("sl", 2048, "sequence length")
	tp := fs.Int("tp", 16, "tensor-parallel degree")
	flopbw := fs.Float64("flopbw", 1, "flop-vs-bw hardware scaling (1, 2 or 4)")
	straggler := fs.Float64("straggler", 1.5,
		"straggler slowdown for the simulated-iteration comparison (0 to skip)")
	csv := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, *sl, 1)
	if err != nil {
		return err
	}
	rows, err := a.DegradationStudy(ctx, cfg, *tp, evoFlag(*flopbw), core.DefaultFaultScenarios())
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Comm fraction under partial hardware failure (H=%d SL=%d TP=%d, flop-vs-bw %gx)",
			*h, *sl, *tp, *flopbw),
		"fault", "compute", "serialized comm", "comm fraction (%)", "shift (pp)")
	for _, r := range rows {
		t.AddRow(r.Fault.Name, r.Compute.String(), r.SerializedComm.String(),
			report.Pct(r.CommFraction), fmt.Sprintf("%+.1f", r.DeltaPP))
	}
	if *csv {
		return t.RenderCSV(w)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "  faults stretch only the collectives: the comm share of the iteration")
	fmt.Fprintln(w, "  grows under every partial failure, compounding the paper's trend.")
	if *straggler > 1 {
		if err := degradationSim(cfg, *tp, *straggler, w); err != nil {
			return err
		}
	}
	return nil
}

// degradationSim contrasts one simulated training iteration on healthy
// hardware against the same iteration with a straggler device, using
// the event-level fault hook (sim.Faults) rather than the analytical
// one — the lock-step schedule shows the straggler pacing the group.
func degradationSim(cfg model.Config, tp int, straggler float64, w io.Writer) error {
	cfg.Layers = 2
	const dp = 4
	nodes := (tp*dp + 3) / 4
	plan := dist.Plan{
		Model: cfg, TP: tp, DP: dp,
		Cluster: hw.MI210Cluster(nodes, 1.0/8),
		Algo:    collective.Ring,
	}
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		return err
	}
	timer, err := dist.NewTimer(plan, calc)
	if err != nil {
		return err
	}
	healthy, _, err := dist.RunIteration(plan, timer, dist.ScheduleOptions{})
	if err != nil {
		return err
	}
	faulted, _, err := dist.RunIteration(plan, timer, dist.ScheduleOptions{
		Faults: sim.Faults{StragglerDevice: 0, StragglerSlowdown: straggler},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  simulated iteration: healthy %v, straggler %.2fx -> %v (%.2fx longer)\n",
		healthy.Makespan, straggler, faulted.Makespan,
		float64(faulted.Makespan)/float64(healthy.Makespan))
	return nil
}
