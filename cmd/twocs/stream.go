package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/report"
	"twocs/internal/stream"
)

// cmdSweepStream is the streaming design-space search: the serialized
// evolution grid flows row-by-row into an NDJSON or CSV sink (bounded
// memory at any grid size) while optional online reducers keep the
// interesting slice — the K best configurations, the 3-objective
// Pareto frontier, and per-axis comm-fraction marginals. Rows are
// emitted in grid order; output is byte-identical at any -workers
// count. An interrupted run still ends with a trailer row naming the
// reason, and the digests summarize the emitted prefix.
func cmdSweepStream(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("sweep-stream")
	out := fs.String("out", "-", "row destination: a file path, or - for stdout")
	format := fs.String("format", "ndjson", "row format: ndjson or csv")
	b := fs.Int("b", 1, "batch size")
	scenarios := fs.Int("scenarios", 0,
		"flop-vs-bw scenario count, evenly spanning 1..flopbw-max (0 = the paper's 1x/2x/4x)")
	flopbwMax := fs.Float64("flopbw-max", 4, "largest flop-vs-bw ratio when -scenarios is set")
	topK := fs.Int("topk", 0, "print the K best configurations by iteration time (0 = off)")
	pareto := fs.Bool("pareto", false, "print the (iter time, comm fraction, memory) Pareto frontier")
	marginals := fs.Bool("marginals", false, "print per-axis comm-fraction marginals")
	partial := fs.Bool("partial", false,
		"on interruption, back-fill never-computed grid points as canceled rows (null objectives) so the artifact keeps the full grid shape")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "ndjson" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (want ndjson or csv)", *format)
	}
	if *topK < 0 {
		return fmt.Errorf("negative -topk %d", *topK)
	}
	evos, err := scenarioList(*scenarios, *flopbwMax)
	if err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}

	rowDst := w
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		rowDst = f
	}
	var writer stream.Sink
	if *format == "csv" {
		writer = stream.NewCSV(rowDst)
	} else {
		writer = stream.NewNDJSON(rowDst)
	}

	var count stream.Discard
	sinks := []stream.Sink{writer, &count}
	var top *stream.TopK
	if *topK > 0 {
		top, err = stream.NewTopK(*topK)
		if err != nil {
			return err
		}
		sinks = append(sinks, top)
	}
	var front *stream.Pareto
	if *pareto {
		front = stream.NewPareto()
		sinks = append(sinks, front)
	}
	var marg *stream.Marginals
	if *marginals {
		marg = stream.NewMarginals()
		sinks = append(sinks, marg)
	}

	streamFn := a.StreamEvolutionGridCtx
	if *partial {
		streamFn = a.StreamEvolutionGridPartialCtx
	}
	streamErr := streamFn(ctx, core.Table3Hs(), core.Table3SLs(), core.Table3TPs(),
		*b, evos, stream.Multi(sinks...))
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "twocs: streamed %d rows to %s\n", count.Rows, *out)
	}

	// The digests summarize whatever prefix reached the sinks — for a
	// complete run, the full grid; for an interrupted one, the rows the
	// trailer accounts for.
	if top != nil {
		if err := renderTopK(w, top); err != nil {
			return err
		}
	}
	if front != nil {
		if err := renderPareto(w, front); err != nil {
			return err
		}
	}
	if marg != nil {
		if err := renderMarginals(w, marg); err != nil {
			return err
		}
	}
	return streamErr
}

// ratioList expands the -scenarios/-flopbw-max flags into flop-vs-bw
// ratios: 0 keeps the paper's three points; N >= 1 spans [1, max] with
// N evenly spaced ratios (N=1 is just max). sweep-fan ships this list
// to the replicas' grid spec, so the local and remote sweeps enumerate
// scenarios from the same numbers.
func ratioList(n int, max float64) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative -scenarios %d", n)
	}
	if n == 0 {
		return []float64{1, 2, 4}, nil
	}
	if max < 1 {
		return nil, fmt.Errorf("-flopbw-max %g below 1", max)
	}
	if n == 1 {
		return []float64{max}, nil
	}
	ratios := make([]float64, n)
	for i := range ratios {
		ratios[i] = 1 + (max-1)*float64(i)/float64(n-1)
	}
	return ratios, nil
}

// scenarioList maps the expanded ratios onto hardware scenarios via
// hw.RatioScenario, so a ratio-1 point is the identity evolution here
// and on twocsd replicas alike.
func scenarioList(n int, max float64) ([]hw.Evolution, error) {
	ratios, err := ratioList(n, max)
	if err != nil {
		return nil, err
	}
	evos := make([]hw.Evolution, len(ratios))
	for i, r := range ratios {
		evos[i] = hw.RatioScenario(r)
	}
	return evos, nil
}

func addRowTo(t *report.Table, rank string, r stream.Row) {
	t.AddRow(rank, r.Evo, fmt.Sprint(r.H), fmt.Sprint(r.SL), fmt.Sprint(r.B),
		fmt.Sprint(r.TP), r.IterTime.String(), report.Pct(r.CommFrac),
		r.MemBytes.String())
}

// renderCanceled notes the canceled rows a reducer skipped — only when
// there were any, so complete-run output is byte-identical to before.
func renderCanceled(w io.Writer, n int64) {
	if n > 0 {
		fmt.Fprintf(w, "  (%d canceled rows excluded from this digest)\n", n)
	}
}

func renderTopK(w io.Writer, top *stream.TopK) error {
	best := top.Best()
	t := report.NewTable(fmt.Sprintf("Top %d configurations by projected iteration time", len(best)),
		"rank", "evo", "H", "SL", "B", "TP", "iter time", "comm (%)", "mem/device")
	for i, r := range best {
		addRowTo(t, fmt.Sprint(i+1), r)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	renderCanceled(w, top.Canceled())
	return nil
}

func renderPareto(w io.Writer, front *stream.Pareto) error {
	rows := front.Frontier()
	t := report.NewTable(fmt.Sprintf("Pareto frontier (iter time vs comm fraction vs memory): %d points", len(rows)),
		"#", "evo", "H", "SL", "B", "TP", "iter time", "comm (%)", "mem/device")
	for i, r := range rows {
		addRowTo(t, fmt.Sprint(i+1), r)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	renderCanceled(w, front.Canceled())
	return nil
}

func renderMarginals(w io.Writer, marg *stream.Marginals) error {
	t := report.NewTable("Per-axis comm-fraction marginals (mean over all grid rows sharing the value)",
		"axis", "value", "rows", "mean comm (%)", "min (%)", "max (%)", "mean iter time")
	for _, ax := range marg.Axes() {
		for _, v := range ax.Values {
			t.AddRow(ax.Axis, v.Value, fmt.Sprint(v.Count), report.Pct(v.MeanCommFrac),
				report.Pct(v.MinCommFrac), report.Pct(v.MaxCommFrac), v.MeanIterTime.String())
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, ax := range marg.Axes() {
		fmt.Fprintf(w, "  %s spread of per-value means: %s\n", ax.Axis, report.Pct(ax.Spread()))
	}
	renderCanceled(w, marg.Canceled())
	return nil
}
