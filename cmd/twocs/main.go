// Command twocs runs the Comp-vs-Comm analyses from the command line.
//
// Usage:
//
//	twocs [-workers N] <subcommand> [flags]
//
// The global -workers flag bounds the goroutines the grid studies fan
// out over: 0 (the default) uses every CPU, 1 forces the sequential
// path. Results are byte-identical at any worker count.
//
// Subcommands:
//
//	zoo          Table 2: the published-model zoo and parameter counts
//	memory       Figure 6: model memory demand vs device capacity trend
//	algorithmic  Figure 7: algorithmic slack and edge scaling
//	tp           Figure 9b: required tensor-parallel scaling
//	serialized   Figures 10/12: serialized communication fraction grid
//	sweep-stream streaming design-space grid with online digests
//	sweep-fan    sweep-stream fanned out over twocsd replicas
//	overlapped   Figures 11/13: overlapped communication percentage grid
//	casestudy    Figure 14: end-to-end serialized + overlapped case study
//	validate     Figure 15: operator-level model accuracy
//	speedup      §4.3.8: profiling-cost comparison (2100x / 1.5x claims)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/model"
	"twocs/internal/parallel"
	"twocs/internal/report"
	"twocs/internal/telemetry"
	"twocs/internal/units"
)

func main() {
	// SIGINT/SIGTERM cancel the run's context: sweeps stop claiming grid
	// points, partial results render, and the deferred telemetry/profile
	// flushes in runCtx still execute. A second signal after stop()
	// restores default handling, so a stuck run can always be killed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := runCtx(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "twocs:", err)
		var pan *parallel.PanicError
		if errors.As(err, &pan) {
			fmt.Fprintf(os.Stderr, "twocs: panic stack:\n%s", pan.Stack)
		}
		os.Exit(exitCode(err))
	}
}

// exitCode maps an error to the documented exit status: 3 for a run
// that was interrupted, timed out, or produced only partial results;
// 1 for every other failure.
func exitCode(err error) int {
	var pe *parallel.PartialError
	if errors.As(err, &pe) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 3
	}
	return 1
}

// workerCount is the global -workers setting consumed by newAnalyzer:
// 0 selects runtime.NumCPU(), 1 forces sequential sweeps.
var workerCount int

// telemetryOpts carries the observability flags. They are registered on
// the global flag set AND (via newFlagSet) on every subcommand's, so
// `twocs -trace run.json serialized` and `twocs serialized -trace
// run.json` both work; telemetry output goes to files and stderr only,
// leaving subcommand stdout byte-identical with and without the flags.
var telemetryOpts struct {
	trace   string // write a Chrome trace of this run's spans
	metrics bool   // dump the metrics snapshot to metricsSink at exit
}

// metricsSink receives the -metrics dump; tests substitute a buffer.
var metricsSink io.Writer = os.Stderr

// heartbeatSink receives the -progress NDJSON heartbeat events; tests
// substitute a buffer. Heartbeats go to stderr so subcommand stdout
// stays byte-identical with and without live observability.
var heartbeatSink io.Writer = os.Stderr

// debugAddr publishes the -http server's bound address while a run is
// live ("" otherwise); tests poll it to scrape a run mid-flight.
var debugAddr atomic.Value // of string

func debugServerAddr() string {
	if v, ok := debugAddr.Load().(string); ok {
		return v
	}
	return ""
}

// addSharedFlags registers the flags every subcommand shares. Defaults
// are the variables' current values, so a value parsed in the global
// position survives the subcommand's own Parse.
func addSharedFlags(fs *flag.FlagSet) {
	fs.IntVar(&workerCount, "workers", workerCount,
		"worker goroutines for grid sweeps (0 = all CPUs, 1 = sequential)")
	fs.StringVar(&telemetryOpts.trace, "trace", telemetryOpts.trace,
		"write a Chrome trace of this run's telemetry spans to `file`")
	fs.BoolVar(&telemetryOpts.metrics, "metrics", telemetryOpts.metrics,
		"print the telemetry metrics snapshot to stderr after the subcommand")
}

// newFlagSet builds a subcommand flag set with the shared observability
// flags registered. The gantt subcommand keeps its pre-existing -trace
// flag (it exports the *simulated* iteration's trace); for gantt the
// telemetry trace is only reachable from the global position.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.IntVar(&workerCount, "workers", workerCount,
		"worker goroutines for grid sweeps (0 = all CPUs, 1 = sequential)")
	fs.BoolVar(&telemetryOpts.metrics, "metrics", telemetryOpts.metrics,
		"print the telemetry metrics snapshot to stderr after the subcommand")
	if name != "gantt" {
		fs.StringVar(&telemetryOpts.trace, "trace", telemetryOpts.trace,
			"write a Chrome trace of this run's telemetry spans to `file`")
	}
	return fs
}

// run executes one CLI invocation with no external cancellation; tests
// and library callers use it. runCtx is the signal- and timeout-aware
// entry point main uses.
func run(args []string, w io.Writer) error {
	return runCtx(context.Background(), args, w)
}

func runCtx(ctx context.Context, args []string, w io.Writer) (err error) {
	// Reset shared flag state: run is re-entered by tests, and the
	// current-value-as-default registration below would otherwise leak
	// one invocation's flags into the next.
	workerCount = 0
	telemetryOpts.trace, telemetryOpts.metrics = "", false

	global := flag.NewFlagSet("twocs", flag.ContinueOnError)
	addSharedFlags(global)
	cpuprofile := global.String("cpuprofile", "",
		"write a runtime/pprof CPU profile of this run to `file` (global position only)")
	memprofile := global.String("memprofile", "",
		"write a heap profile to `file` at exit (global position only)")
	timeout := global.Duration("timeout", 0,
		"abort the run after this duration, keeping partial results (global position only)")
	httpAddr := global.String("http", "",
		"serve live /metrics, /metrics.json, /progress, /healthz and /debug/pprof on `addr` (e.g. :8080; global position only)")
	sampleEvery := global.Duration("sample", 0,
		"metrics sampler interval (0 = 1s when -http is set, else off; global position only)")
	progressEvery := global.Duration("progress", 0,
		"emit an NDJSON progress heartbeat to stderr every `interval` (global position only)")
	global.Usage = usage
	if err := global.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	args = global.Args()
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "twocs: cpu profile written to %s\n", *cpuprofile)
		}()
	}

	// Collect for the whole dispatch: the subcommand's own flag parse
	// may still enable -trace/-metrics, so whether to *export* is only
	// decided afterwards. An idle collector costs a few hundred spans
	// of memory at most; the zero-cost no-op path is for library and
	// benchmark use, where no collector is ever enabled.
	//
	// Export and the heap profile run from a defer against the named
	// return, so a failing, timed-out, or interrupted subcommand still
	// flushes its artifacts — the telemetry of a dying run is exactly
	// the telemetry worth keeping.
	col := telemetry.NewCollector()
	telemetry.Enable(col)
	defer telemetry.Enable(nil)
	defer func() {
		if expErr := exportTelemetry(col); expErr != nil && err == nil {
			err = expErr
		}
		if *memprofile != "" {
			if memErr := writeHeapProfile(*memprofile); memErr != nil && err == nil {
				err = memErr
			}
		}
	}()

	// Live observability plane. A process-wide Progress tracker is always
	// armed alongside the collector (the stream engine's hooks are no-ops
	// against an idle tracker), the sampler records periodic snapshots
	// when -http or -sample asks for them, and -http serves everything
	// live. All of it tears down before the telemetry export above runs,
	// so a SIGINT or -timeout still flushes artifacts after the server
	// and sampler goroutines have exited.
	prog := telemetry.NewProgress()
	telemetry.EnableProgress(prog)
	defer telemetry.EnableProgress(nil)

	var sampler *telemetry.Sampler
	if *httpAddr != "" || *sampleEvery > 0 {
		interval := *sampleEvery
		if interval <= 0 {
			interval = time.Second
		}
		sampler = telemetry.NewSampler(col, interval, 0)
		sampler.Start()
		defer sampler.Stop()
	}

	if *httpAddr != "" {
		srv, srvErr := telemetry.NewServer(*httpAddr, col, sampler)
		if srvErr != nil {
			return srvErr
		}
		debugAddr.Store(srv.Addr())
		fmt.Fprintf(os.Stderr, "twocs: debug server listening on http://%s\n", srv.Addr())
		defer func() {
			debugAddr.Store("")
			// The run's ctx is likely already canceled here (that is how
			// SIGINT and -timeout end a run); shutdown needs its own live
			// deadline to drain in-flight scrapes.
			sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
			defer cancel()
			if sdErr := srv.Shutdown(sctx); sdErr != nil && err == nil {
				err = sdErr
			}
		}()
	}

	if *progressEvery > 0 {
		stopHeartbeats := startHeartbeats(prog, *progressEvery)
		defer stopHeartbeats()
	}

	return dispatch(ctx, cmd, rest, w)
}

// startHeartbeats emits one NDJSON progress event to heartbeatSink
// every interval until the returned stop function runs. Stop emits one
// final event, so the stream's last line always reflects the finished
// (or canceled) run.
func startHeartbeats(p *telemetry.Progress, interval time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_ = p.Snapshot().WriteHeartbeat(heartbeatSink)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
		_ = p.Snapshot().WriteHeartbeat(heartbeatSink)
	}
}

func exportTelemetry(col *telemetry.Collector) error {
	if telemetryOpts.trace != "" {
		f, err := os.Create(telemetryOpts.trace)
		if err != nil {
			return err
		}
		if err := col.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "twocs: telemetry trace written to %s (open in Perfetto or chrome://tracing)\n",
			telemetryOpts.trace)
	}
	if telemetryOpts.metrics {
		fmt.Fprintln(metricsSink, "# twocs telemetry metrics")
		if err := col.Snapshot().WriteMetrics(metricsSink); err != nil {
			return err
		}
	}
	return nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "twocs: heap profile written to %s\n", path)
	return nil
}

// dispatch routes to the subcommand. The context reaches the commands
// that drive long sweeps or simulations (cancellation stops their grid
// fan-out mid-run); the quick table printers ignore it.
func dispatch(ctx context.Context, cmd string, rest []string, w io.Writer) error {
	switch cmd {
	case "zoo":
		return cmdZoo(rest, w)
	case "memory":
		return cmdMemory(rest, w)
	case "algorithmic":
		return cmdAlgorithmic(rest, w)
	case "tp":
		return cmdTP(rest, w)
	case "serialized":
		return cmdSerialized(ctx, rest, w)
	case "sweep-stream":
		return cmdSweepStream(ctx, rest, w)
	case "sweep-fan":
		return cmdSweepFan(ctx, rest, w)
	case "overlapped":
		return cmdOverlapped(ctx, rest, w)
	case "casestudy":
		return cmdCaseStudy(ctx, rest, w)
	case "validate":
		return cmdValidate(rest, w)
	case "speedup":
		return cmdSpeedup(rest, w)
	case "pipeline":
		return cmdPipeline(rest, w)
	case "precision":
		return cmdPrecision(rest, w)
	case "techniques":
		return cmdTechniques(rest, w)
	case "zero":
		return cmdZero(rest, w)
	case "moe":
		return cmdMoE(rest, w)
	case "inference":
		return cmdInference(rest, w)
	case "gantt":
		return cmdGantt(rest, w)
	case "scaling":
		return cmdScaling(ctx, rest, w)
	case "timeline":
		return cmdTimeline(ctx, rest, w)
	case "calibrate":
		return cmdCalibrate(rest, w)
	case "project":
		return cmdProject(rest, w)
	case "memsim":
		return cmdMemSim(rest, w)
	case "diagnose":
		return cmdDiagnose(rest, w)
	case "degradation":
		return cmdDegradation(ctx, rest, w)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: twocs [-workers N] [observability flags] <subcommand> [flags]

global flags:
  -workers N      worker goroutines for grid sweeps (0 = all CPUs, 1 = sequential)
  -timeout D      abort the run after duration D (e.g. 30s), keeping partial
                  results (global position only)
  -trace FILE     write a Chrome trace of the engine's telemetry spans
                  (Perfetto-loadable; also accepted after the subcommand,
                  except for gantt, whose -trace exports the simulated run)
  -metrics        print the telemetry metrics snapshot to stderr at exit
  -cpuprofile F   write a runtime/pprof CPU profile (global position only)
  -memprofile F   write a heap profile at exit (global position only)
  -http ADDR      serve live /metrics (Prometheus), /metrics.json, /progress,
                  /healthz and /debug/pprof on ADDR, e.g. :8080 (global
                  position only)
  -sample D       metrics sampler interval (default 1s when -http is set,
                  off otherwise; global position only)
  -progress D     emit an NDJSON progress heartbeat to stderr every D
                  (global position only)

exit status:
  0  success
  1  error
  3  interrupted (SIGINT/SIGTERM) or timed out; any partial results were
     printed with "(canceled)" cells and telemetry/profiles were flushed

subcommands:
  zoo          Table 2: published-model zoo and parameter counts
  memory       Figure 6: memory demand vs capacity trends
  algorithmic  Figure 7: algorithmic slack and edge scaling
  tp           Figure 9b: required tensor-parallel scaling
  serialized   Figures 10/12: serialized comm fraction (-flopbw 1|2|4)
  sweep-stream stream the (evolution × H × SL × TP) design-space grid as
               NDJSON/CSV rows with online digests (-out, -format,
               -scenarios, -topk, -pareto, -marginals); bounded memory
               at any grid size
  sweep-fan    sweep-stream distributed over twocsd replicas
               (-replicas URL,URL,... plus sweep-stream's flags and
               -model, -shard-rows, -retries); output byte-identical
               to a single node at any replica count, with per-shard
               retry/resume when replicas fail
  overlapped   Figures 11/13: overlapped comm percentage (-flopbw, -tp)
  casestudy    Figure 14: end-to-end case study
  validate     Figure 15: operator-level model accuracy
  speedup      profiling-cost comparison (2100x / 1.5x)

extensions:
  pipeline     §6.1.2: pipeline-parallel bubble and transfer costs
  precision    §6.2: number-format study (FP32/FP16/BF16/FP8)
  techniques   §5: communication-acceleration techniques
  zero         §6.1.3: ZeRO sharding vs plain data parallelism
  moe          §6.1.1: Mixture-of-Experts all-to-all costs
  inference    §6.3: forward-only comm share
  gantt        draw one simulated iteration as an ASCII Gantt chart
  diagnose     per-operator projection-error audit (-json)
  memsim       simulate one iteration's memory timeline
  timeline     comm share of every zoo model at its era's TP
  scaling      throughput vs TP×DP split of a fixed device budget
  degradation  comm fraction under partial hardware failure (-straggler)
  calibrate    profile the baseline and save the operator model (-o)
  project      project a config from a saved calibration (-calibration)`)
}

// newAnalyzer builds the standard analyzer: BERT baseline at TP=4 on the
// paper's MI210 node (§4.3.1), with the global -workers setting applied.
func newAnalyzer() (*core.Analyzer, error) {
	e, err := model.LookupZoo("BERT")
	if err != nil {
		return nil, err
	}
	a, err := core.NewAnalyzer(hw.MI210Cluster(1, 0), e.Config, 4)
	if err != nil {
		return nil, err
	}
	a.Workers = workerCount
	return a, nil
}

func cmdZoo(args []string, w io.Writer) error {
	fs := newFlagSet("zoo")
	csv := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t := report.NewTable("Table 2: NLP model hyperparameters",
		"model", "year", "layers", "H", "heads", "SL", "FC", "type",
		"paper size (B)", "computed (B)")
	for _, e := range model.Zoo() {
		c := e.Config
		t.AddRow(c.Name, fmt.Sprint(e.Year), fmt.Sprint(c.Layers),
			fmt.Sprint(c.Hidden), fmt.Sprint(c.Heads), fmt.Sprint(c.SeqLen),
			fmt.Sprint(c.FCDim), c.Kind.String(),
			report.F(e.PaperSizeB), report.F(c.Params()/1e9))
	}
	if *csv {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}

func cmdMemory(args []string, w io.Writer) error {
	fs := newFlagSet("memory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	capAt := func(year int) (float64, error) {
		c, err := hw.CapacityAt(year)
		return float64(c), err
	}
	rows, err := core.MemoryTrend(model.Zoo(), capAt)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 6: model memory demand (H·SL) vs device capacity (normalized to BERT)",
		"model", "year", "demand (norm)", "capacity (norm)", "gap")
	for _, r := range rows {
		t.AddRow(r.Model, fmt.Sprint(r.Year), report.F(r.NormDemand),
			report.F(r.NormCapacity), report.F(r.NormDemand/r.NormCapacity))
	}
	return t.Render(w)
}

func cmdAlgorithmic(args []string, w io.Writer) error {
	fs := newFlagSet("algorithmic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := core.AlgorithmicScaling(model.Zoo())
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 7: algorithmic scaling of slack (SL·B) and edge ((H+SL)/TP), normalized to BERT",
		"model", "year", "slack", "edge", "norm slack", "norm edge")
	var slacks, edges []float64
	for _, r := range rows {
		t.AddRow(r.Model, fmt.Sprint(r.Year), report.F(r.Slack), report.F(r.Edge),
			report.F(r.NormSlack), report.F(r.NormEdge))
		slacks = append(slacks, r.NormSlack)
		edges = append(edges, r.NormEdge)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "  slack shape: %s   edge shape: %s\n",
		report.Sparkline(slacks), report.Sparkline(edges))
	last := rows[len(rows)-1]
	fmt.Fprintf(w, "  slack drop vs BERT: %s   edge drop vs BERT: %s (paper: ~75%% and ~80%%)\n",
		units.Percent(1-last.NormSlack), units.Percent(1-last.NormEdge))
	return nil
}

func cmdTP(args []string, w io.Writer) error {
	fs := newFlagSet("tp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ests, err := distEstimates()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 9b: required TP scaling (base_TP=8 × p/s)",
		"model", "year", "size ratio p", "capacity scale s", "p/s", "required TP")
	for _, e := range ests {
		t.AddRow(e.Model, fmt.Sprint(e.Year), report.F(e.SizeRatio),
			report.F(e.CapacityScale), report.F(e.TPScale), report.F(e.RequiredTP))
	}
	return t.Render(w)
}

func cmdSerialized(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("serialized")
	flopbw := fs.Float64("flopbw", 1, "flop-vs-bw hardware scaling (1, 2 or 4)")
	b := fs.Int("b", 1, "batch size")
	csv := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	pts, err := a.SerializedSweepCtx(ctx, core.Table3Hs(), core.Table3SLs(), core.Table3TPs(), *b, evoFlag(*flopbw))
	pe, partial := partialSweep(err)
	if err != nil && !partial {
		return err
	}
	title := fmt.Sprintf("Figure 10/12: serialized comm fraction of training time (flop-vs-bw %gx, B=%d)", *flopbw, *b)
	t := report.NewTable(title, "H", "SL", "TP", "comm fraction (%)")
	for i, p := range pts {
		frac := report.Pct(p.Fraction)
		if partial && !pe.Completed[i] {
			frac = canceledCell
		}
		t.AddRow(fmt.Sprint(p.H), fmt.Sprint(p.SL), fmt.Sprint(p.TP), frac)
	}
	if *csv {
		if rErr := t.RenderCSV(w); rErr != nil {
			return rErr
		}
		return err
	}
	if rErr := t.Render(w); rErr != nil {
		return rErr
	}
	return err
}

func cmdOverlapped(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("overlapped")
	flopbw := fs.Float64("flopbw", 1, "flop-vs-bw hardware scaling (1, 2 or 4)")
	tp := fs.Int("tp", 16, "tensor-parallel degree of the sliced model")
	csv := fs.Bool("csv", false, "emit CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	pts, err := a.OverlappedSweepCtx(ctx, core.Table3Hs(), core.Table3SLs(), *tp, evoFlag(*flopbw))
	pe, partial := partialSweep(err)
	if err != nil && !partial {
		return err
	}
	title := fmt.Sprintf("Figure 11/13: overlapped comm as %% of compute (flop-vs-bw %gx, TP=%d); >=100 means exposed", *flopbw, *tp)
	t := report.NewTable(title, "H", "SL·B", "overlap (%)")
	for i, p := range pts {
		pct := fmt.Sprintf("%.1f", p.Percent)
		if partial && !pe.Completed[i] {
			pct = canceledCell
		}
		t.AddRow(fmt.Sprint(p.H), fmt.Sprint(p.SLB), pct)
	}
	if *csv {
		if rErr := t.RenderCSV(w); rErr != nil {
			return rErr
		}
		return err
	}
	if rErr := t.Render(w); rErr != nil {
		return rErr
	}
	return err
}

func cmdCaseStudy(ctx context.Context, args []string, w io.Writer) error {
	fs := newFlagSet("casestudy")
	layers := fs.Int("layers", 16, "layer count to simulate (fractions are stable beyond ~8)")
	flopbw := fs.Float64("flopbw", 4, "flop-vs-bw hardware scaling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(65536, 4096, 1)
	if err != nil {
		return err
	}
	cfg.Layers = *layers
	res, err := a.CaseStudyCtx(ctx, cfg, 128, 4, hw.FlopVsBWScenario(*flopbw), core.PaperScenariosFig14())
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 14: H=64K B=1 SL=4K TP=128 DP=4, flop-vs-bw %gx (paper: 47%% serialized + 9%% overlapped-hidden)", *flopbw),
		"scenario", "makespan", "compute %", "serialized %", "DP hidden %", "DP exposed %")
	for _, r := range res {
		t.AddRow(r.Scenario.Name, r.Makespan.String(), report.Pct(r.ComputeFrac),
			report.Pct(r.SerializedCommFrac), report.Pct(r.HiddenDPFrac), report.Pct(r.ExposedDPFrac))
	}
	return t.Render(w)
}

func cmdValidate(args []string, w io.Writer) error {
	fs := newFlagSet("validate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := runValidationSuite()
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 15: operator-level model accuracy (projected vs measured)",
		"sweep", "points", "geomean err (%)", "max err (%)", "paper")
	paper := map[string]string{
		"gemm-vs-sl":        "~15%",
		"gemm-vs-h":         "~15%",
		"layernorm-vs-sl":   "~7%",
		"layernorm-vs-h":    "~7%",
		"allreduce-vs-size": "~11%",
	}
	for _, v := range results {
		t.AddRow(v.Name, fmt.Sprint(len(v.Points)),
			fmt.Sprintf("%.1f", v.GeoMeanErr*100),
			fmt.Sprintf("%.1f", v.MaxErr*100), paper[v.Name])
	}
	return t.Render(w)
}

func cmdSpeedup(args []string, w io.Writer) error {
	fs := newFlagSet("speedup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, roiSpeedup, err := profilingSpeedup()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Profiling-cost comparison (§4.3.8)\n")
	fmt.Fprintf(w, "  exhaustive (all %d sweep configs end-to-end): %v\n",
		core.SweepConfigCount(), rep.Exhaustive)
	fmt.Fprintf(w, "  strategy (one baseline + collective sweep):   %v\n", rep.Strategy)
	fmt.Fprintf(w, "  speedup: %.0fx   (paper: ~2100x)\n", rep.Speedup)
	fmt.Fprintf(w, "  ROI vs full-iteration speedup: %.2fx (paper: ~1.5x)\n", roiSpeedup)
	return nil
}
