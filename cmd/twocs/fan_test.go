package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twocs/internal/core"
	"twocs/internal/hw"
	"twocs/internal/model"
	"twocs/internal/serve"
)

// newFanReplica spins an in-process twocsd-equivalent server and
// returns its base URL.
func newFanReplica(t *testing.T) string {
	t.Helper()
	e, err := model.LookupZoo("BERT")
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(hw.MI210Cluster(1, 0), e.Config, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(a, serve.DefaultConfig(), nil, nil).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestSweepFanReplicaInvariance is the fan-out acceptance gate: the
// NDJSON artifact and the digest tables of `twocs sweep-fan` must be
// byte-identical to `twocs sweep-stream` — and to themselves — at 1, 2
// and 3 replicas and at shard sizes that do and do not divide the grid.
func TestSweepFanReplicaInvariance(t *testing.T) {
	dir := t.TempDir()
	digestFlags := []string{"-scenarios", "1", "-topk", "3", "-pareto", "-marginals"}

	goldenPath := filepath.Join(dir, "single.ndjson")
	goldenOut := runCmd(t, append([]string{"sweep-stream", "-out", goldenPath}, digestFlags...)...)
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	var urls []string
	for replicas := 1; replicas <= 3; replicas++ {
		urls = append(urls, newFanReplica(t))
		for _, shardRows := range []string{"37", "512"} {
			path := filepath.Join(dir, "fan.ndjson")
			out := runCmd(t, append([]string{"sweep-fan",
				"-replicas", strings.Join(urls, ","),
				"-shard-rows", shardRows,
				"-out", path}, digestFlags...)...)
			rows, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(rows) != string(golden) {
				t.Fatalf("replicas=%d shard-rows=%s: fan artifact differs from sweep-stream's",
					replicas, shardRows)
			}
			if out != goldenOut {
				t.Fatalf("replicas=%d shard-rows=%s: fan digests differ from sweep-stream's:\n--- sweep-stream ---\n%s\n--- sweep-fan ---\n%s",
					replicas, shardRows, goldenOut, out)
			}
		}
	}
	if !strings.Contains(goldenOut, "Top 3 configurations") {
		t.Fatalf("digest tables missing:\n%s", goldenOut)
	}
}

// TestSweepFanRejectsUnknownModel: the replica's 400 (naming the valid
// zoo) surfaces as the subcommand's error.
func TestSweepFanRejectsUnknownModel(t *testing.T) {
	url := newFanReplica(t)
	var b strings.Builder
	err := run([]string{"sweep-fan", "-replicas", url, "-model", "BERT-XXL"}, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("err = %v, want an unknown-model rejection", err)
	}
}

// TestSweepFanRequiresReplicas: the flag is mandatory.
func TestSweepFanRequiresReplicas(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"sweep-fan"}, &b); err == nil ||
		!strings.Contains(err.Error(), "-replicas") {
		t.Fatalf("err = %v, want a -replicas requirement", err)
	}
}
