package main

import (
	"strings"
	"testing"
)

// TestCommandOutputDeterministic is the golden-output gate for the CLI:
// every reporting command must emit byte-identical text run-to-run and
// across worker counts. A diff here almost always means an unsorted map
// iteration or a scheduling-order dependence leaked into the report
// path — exactly the class of bug the detrange analyzer guards against
// statically. Running under `go test -race` (CI does) additionally
// checks the Workers>1 executions for data races.
func TestCommandOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps; skipped in -short")
	}
	commands := [][]string{
		{"serialized", "-csv"},
		{"overlapped", "-csv"},
		{"serialized"},
		{"overlapped"},
		{"zoo", "-csv"},
		{"memory"},
	}
	for _, args := range commands {
		args := args
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			parallel4 := append([]string{"-workers", "4"}, args...)
			first := runCmd(t, parallel4...)
			second := runCmd(t, parallel4...)
			if first != second {
				t.Fatalf("two -workers=4 runs of %v differ:\n--- first ---\n%s\n--- second ---\n%s", args, first, second)
			}
			sequential := append([]string{"-workers", "1"}, args...)
			if seq := runCmd(t, sequential...); seq != first {
				t.Fatalf("-workers=1 and -workers=4 outputs of %v differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", args, seq, first)
			}
		})
	}
}
