package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandOutputDeterministic is the golden-output gate for the CLI:
// every reporting command must emit byte-identical text run-to-run and
// across worker counts. A diff here almost always means an unsorted map
// iteration or a scheduling-order dependence leaked into the report
// path — exactly the class of bug the detrange analyzer guards against
// statically. Running under `go test -race` (CI does) additionally
// checks the Workers>1 executions for data races.
func TestCommandOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps; skipped in -short")
	}
	commands := [][]string{
		{"serialized", "-csv"},
		{"overlapped", "-csv"},
		{"serialized"},
		{"overlapped"},
		{"zoo", "-csv"},
		{"memory"},
	}
	for _, args := range commands {
		args := args
		t.Run(strings.Join(args, "_"), func(t *testing.T) {
			parallel4 := append([]string{"-workers", "4"}, args...)
			first := runCmd(t, parallel4...)
			second := runCmd(t, parallel4...)
			if first != second {
				t.Fatalf("two -workers=4 runs of %v differ:\n--- first ---\n%s\n--- second ---\n%s", args, first, second)
			}
			sequential := append([]string{"-workers", "1"}, args...)
			if seq := runCmd(t, sequential...); seq != first {
				t.Fatalf("-workers=1 and -workers=4 outputs of %v differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", args, seq, first)
			}
		})
	}
}

// TestObservabilityFlagsLeaveStdoutIdentical extends the golden gate to
// the telemetry layer: turning on -metrics and -trace must not perturb
// a subcommand's stdout by a single byte — telemetry goes to the trace
// file and the metrics sink only. The written trace must also be valid
// JSON (the Chrome trace-event array Perfetto loads), and the metrics
// dump must report the substrate cache's hit/miss counters.
func TestObservabilityFlagsLeaveStdoutIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sweeps; skipped in -short")
	}
	plain := runCmd(t, "-workers", "4", "serialized")

	var metrics strings.Builder
	metricsSink = &metrics
	defer func() { metricsSink = os.Stderr }()
	tracePath := filepath.Join(t.TempDir(), "run.json")
	instrumented := runCmd(t, "-workers", "4", "serialized",
		"-metrics", "-trace", tracePath)

	if instrumented != plain {
		t.Fatalf("-metrics/-trace changed stdout:\n--- plain ---\n%s\n--- instrumented ---\n%s", plain, instrumented)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	dump := metrics.String()
	for _, want := range []string{"core.substrate.hit", "core.substrate.miss", "parallel.map.tasks"} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

// TestGanttKeepsOwnTraceFlag guards the one deliberate exception in the
// shared-flag wiring: gantt's -trace exports the *simulated* iteration's
// timeline and must keep doing so rather than being shadowed by the
// telemetry trace.
func TestGanttKeepsOwnTraceFlag(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "gantt.json")
	runCmd(t, "gantt", "-trace", tracePath)
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("gantt -trace did not write its simulation trace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("gantt trace is not valid JSON: %v", err)
	}
	for _, e := range events {
		if name, _ := e["name"].(string); strings.HasPrefix(name, "core.") {
			t.Fatalf("gantt trace contains engine telemetry span %q: the telemetry -trace shadowed gantt's", name)
		}
	}
}
