package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepStreamDeterministic is the acceptance gate for the streaming
// subcommand: the NDJSON artifact written with -out and the digest
// tables printed to stdout must be byte-identical at -workers 1 and
// -workers 4 (CI runs this under -race, which also exercises the
// concurrent chunk workers).
func TestSweepStreamDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evolution grid; skipped in -short")
	}
	dir := t.TempDir()
	var goldenFile []byte
	var goldenOut string
	for _, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "rows-"+workers+".ndjson")
		out := runCmd(t, "-workers", workers, "sweep-stream",
			"-out", path, "-topk", "5", "-pareto", "-marginals")
		rows, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading -out artifact: %v", err)
		}
		if goldenFile == nil {
			goldenFile, goldenOut = rows, out
			continue
		}
		if string(rows) != string(goldenFile) {
			t.Fatalf("-workers %s wrote a different NDJSON artifact than -workers 1", workers)
		}
		if out != goldenOut {
			t.Fatalf("-workers %s printed different digests than -workers 1:\n--- workers=1 ---\n%s\n--- workers=%s ---\n%s",
				workers, goldenOut, workers, out)
		}
	}
	if !strings.Contains(goldenOut, "Top 5 configurations") ||
		!strings.Contains(goldenOut, "Pareto frontier") ||
		!strings.Contains(goldenOut, "comm-fraction marginals") {
		t.Fatalf("digest tables missing from stdout:\n%s", goldenOut)
	}
}

// TestSweepStreamNDJSONWellFormed parses every stdout line of a small
// streamed run: each row must be valid JSON with contiguous indexes,
// and the last line must be a complete trailer accounting for them.
func TestSweepStreamNDJSONWellFormed(t *testing.T) {
	out := runCmd(t, "sweep-stream", "-scenarios", "1")
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows int64
	var sawTrailer bool
	for sc.Scan() {
		line := sc.Text()
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", rows, err, line)
		}
		if sawTrailer {
			t.Fatalf("row after the trailer: %s", line)
		}
		if m["trailer"] == true {
			sawTrailer = true
			if m["complete"] != true {
				t.Fatalf("trailer not complete: %s", line)
			}
			if int64(m["rows"].(float64)) != rows {
				t.Fatalf("trailer counts %v rows, stream had %d", m["rows"], rows)
			}
			continue
		}
		if int64(m["i"].(float64)) != rows {
			t.Fatalf("row %d carries index %v", rows, m["i"])
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer")
	}
	if rows == 0 {
		t.Fatal("no rows streamed")
	}
}

// TestSweepStreamCSV checks the CSV artifact path end to end: header,
// per-row field count, and the comment trailer.
func TestSweepStreamCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.csv")
	runCmd(t, "sweep-stream", "-scenarios", "1", "-format", "csv", "-out", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV artifact too short: %d lines", len(lines))
	}
	if lines[0] != "i,evo,flopbw,h,sl,b,tp,iter_s,comm_frac,mem_bytes" {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "#trailer ") || !strings.Contains(last, "complete=true") {
		t.Fatalf("bad CSV trailer: %q", last)
	}
	for i, line := range lines[1 : len(lines)-1] {
		if got := strings.Count(line, ","); got != 9 {
			t.Fatalf("CSV row %d has %d commas: %q", i, got, line)
		}
	}
}

// TestSweepStreamFlagErrors covers the argument failures.
func TestSweepStreamFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"sweep-stream", "-format", "parquet"},
		{"sweep-stream", "-scenarios", "-2"},
		{"sweep-stream", "-scenarios", "3", "-flopbw-max", "0.5"},
		{"sweep-stream", "-topk", "-1"},
	} {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}
