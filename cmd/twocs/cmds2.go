package main

import (
	"fmt"
	"io"
	"os"

	"twocs/internal/collective"
	"twocs/internal/core"
	"twocs/internal/dist"
	"twocs/internal/hw"
	"twocs/internal/kernels"
	"twocs/internal/report"
	"twocs/internal/tensor"
	"twocs/internal/units"
)

// This file holds the extension subcommands beyond the paper's figures:
// pipeline parallelism (§6.1.2), MoE expert parallelism (§6.1.1),
// inference (§6.3), number formats (§6.2), Section 5 acceleration
// techniques, ZeRO sharding (§6.1.3), and a Gantt view of a simulated
// iteration.

// evoFlag maps the -flopbw flag to a hardware scenario. The comparison
// against 1 is a default-value sentinel on a freshly parsed flag (the
// string "1" parses to exactly 1.0), not arithmetic on computed floats.
func evoFlag(flopbw float64) hw.Evolution {
	//lint:ignore floatcmp exact default-sentinel check on a parsed flag value
	if flopbw != 1 {
		return hw.FlopVsBWScenario(flopbw)
	}
	return hw.Identity()
}

func cmdPipeline(args []string, w io.Writer) error {
	fs := newFlagSet("pipeline")
	h := fs.Int("h", 16384, "hidden dimension")
	sl := fs.Int("sl", 2048, "sequence length")
	layers := fs.Int("layers", 96, "layer count")
	tp := fs.Int("tp", 16, "tensor-parallel degree within a stage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, *sl, 1)
	if err != nil {
		return err
	}
	cfg.Layers = *layers
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Pipeline parallelism (§6.1.2): H=%d SL=%d L=%d TP=%d", *h, *sl, *layers, *tp),
		"stages", "microbatches", "bubble %", "p2p %", "tp-AR %", "total comm %")
	for _, stages := range []int{2, 4, 8} {
		for _, micro := range []int{4, 16, 64} {
			nodes := (*tp*stages + 3) / 4
			plan := dist.Plan{
				Model: cfg, TP: *tp, DP: 1,
				Cluster: hw.MI210Cluster(nodes, 1.0/8),
				Algo:    collective.Ring,
			}
			timer, err := dist.NewTimer(plan, calc)
			if err != nil {
				return err
			}
			rep, err := dist.AnalyzePipeline(dist.PipelinePlan{
				Plan: plan, Stages: stages, MicroBatches: micro,
			}, timer)
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprint(stages), fmt.Sprint(micro),
				report.Pct(rep.BubbleFraction), report.Pct(rep.P2PFraction),
				report.Pct(rep.SerializedARFraction), report.Pct(rep.TotalCommFraction()))
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "  killing the bubble needs many micro-batches — i.e. large batches,")
	fmt.Fprintln(w, "  the §6.1.2 tension with memory and convergence.")
	return nil
}

func cmdPrecision(args []string, w io.Writer) error {
	fs := newFlagSet("precision")
	h := fs.Int("h", 8192, "hidden dimension")
	tp := fs.Int("tp", 16, "tensor-parallel degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, 2048, 1)
	if err != nil {
		return err
	}
	rows, err := a.PrecisionStudy(cfg, *tp, hw.Identity(),
		[]tensor.DType{tensor.FP32, tensor.FP16, tensor.BF16, tensor.FP8})
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Number formats (§6.2): H=%d TP=%d per-layer split", *h, *tp),
		"format", "compute", "serialized comm", "comm fraction (%)")
	for _, r := range rows {
		t.AddRow(r.DT.String(), r.Compute.String(), r.SerializedComm.String(),
			report.Pct(r.CommFraction))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "  reduced precision speeds everything up but raises the COMM FRACTION:")
	fmt.Fprintln(w, "  compute gains super-linearly, bytes shrink only linearly (§6.2).")
	return nil
}

func cmdTechniques(args []string, w io.Writer) error {
	fs := newFlagSet("techniques")
	h := fs.Int("h", 16384, "hidden dimension")
	tp := fs.Int("tp", 64, "tensor-parallel degree")
	flopbw := fs.Float64("flopbw", 4, "flop-vs-bw hardware scaling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, 2048, 1)
	if err != nil {
		return err
	}
	rows, err := a.TechniqueStudy(cfg, *tp, evoFlag(*flopbw))
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Communication acceleration (§5): H=%d TP=%d flop-vs-bw %gx", *h, *tp, *flopbw),
		"technique", "serialized comm", "comm fraction (%)", "iteration speedup")
	for _, r := range rows {
		t.AddRow(r.Name, r.SerializedComm.String(), report.Pct(r.CommFraction),
			fmt.Sprintf("%.2fx", r.SpeedupVsBaseline))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// The §5 opening claim, quantified: what must the network do as
	// compute scales?
	comp1, comm1, err := a.MeasuredLayerSplit(cfg, *tp, hw.Identity())
	if err != nil {
		return err
	}
	frac1 := float64(comm1) / float64(comp1+comm1)
	hold, err := a.RequiredNetScale(cfg, *tp, *flopbw, frac1)
	if err != nil {
		return err
	}
	halve, err := a.RequiredNetScale(cfg, *tp, *flopbw, frac1/2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  to HOLD today's %.0f%% comm fraction under %gx compute scaling the\n", frac1*100, *flopbw)
	fmt.Fprintf(w, "  network must scale %.1fx (commensurate); to HALVE it, %.1fx (\"if not\n", hold, halve)
	fmt.Fprintf(w, "  more\") — the paper's §5 conclusion, quantified.\n")
	return nil
}

func cmdZero(args []string, w io.Writer) error {
	fs := newFlagSet("zero")
	h := fs.Int("h", 8192, "hidden dimension")
	tp := fs.Int("tp", 16, "tensor-parallel degree")
	dp := fs.Int("dp", 8, "data-parallel degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, 2048, 1)
	if err != nil {
		return err
	}
	rows, err := a.ZeROStudy(cfg, *tp, *dp, hw.Identity())
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("ZeRO sharding (§6.1.3): H=%d TP=%d DP=%d per-layer costs", *h, *tp, *dp),
		"scheme", "critical comm", "overlappable comm", "param state/device")
	for _, r := range rows {
		t.AddRow(r.Name, r.CriticalComm.String(), r.OverlappableComm.String(),
			r.PerDeviceStateBytes.String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "  ZeRO buys memory with critical-path all-gathers — another face of")
	fmt.Fprintln(w, "  the capacity-vs-communication trade the paper tracks.")
	return nil
}

func cmdMoE(args []string, w io.Writer) error {
	fs := newFlagSet("moe")
	h := fs.Int("h", 16384, "hidden dimension")
	tp := fs.Int("tp", 64, "tensor-parallel degree")
	flopbw := fs.Float64("flopbw", 1, "flop-vs-bw hardware scaling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, 2048, 1)
	if err != nil {
		return err
	}
	cfg.Layers = 118
	t := report.NewTable(
		fmt.Sprintf("Mixture-of-Experts (§6.1.1): H=%d TP=%d flop-vs-bw %gx", *h, *tp, *flopbw),
		"experts", "all-to-all", "total comm fraction (%)")
	dense, err := a.SerializedFraction(cfg, *tp, evoFlag(*flopbw))
	if err != nil {
		return err
	}
	t.AddRow("dense", "-", report.Pct(dense.CommFraction()))
	for _, experts := range []int{4, 8, 16, 32} {
		moe, err := a.ProjectMoE(cfg, *tp, experts, evoFlag(*flopbw))
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprint(experts), moe.AllToAll.String(), report.Pct(moe.CommFraction()))
	}
	return t.Render(w)
}

func cmdInference(args []string, w io.Writer) error {
	fs := newFlagSet("inference")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := newAnalyzer()
	if err != nil {
		return err
	}
	t := report.NewTable("Distributed inference (§6.3): forward-only comm share vs training",
		"model", "TP", "training (%)", "inference (%)")
	for _, spec := range []struct {
		name  string
		h, sl int
		tp    int
	}{
		{"T-NLG-class", 4096, 1024, 16},
		{"PaLM-1x", 16384, 2048, 64},
		{"PaLM-3x", 65536, 4096, 256},
	} {
		cfg, err := core.FutureConfig(spec.h, spec.sl, 1)
		if err != nil {
			return err
		}
		cfg.Layers = 118
		train, err := a.SerializedFraction(cfg, spec.tp, hw.Identity())
		if err != nil {
			return err
		}
		infer, err := a.ProjectInference(cfg, spec.tp, hw.Identity())
		if err != nil {
			return err
		}
		t.AddRow(spec.name, fmt.Sprint(spec.tp),
			report.Pct(train.CommFraction()), report.Pct(infer.CommFraction()))
	}
	return t.Render(w)
}

func cmdGantt(args []string, w io.Writer) error {
	fs := newFlagSet("gantt")
	h := fs.Int("h", 8192, "hidden dimension")
	layers := fs.Int("layers", 2, "layer count to draw")
	tp := fs.Int("tp", 16, "tensor-parallel degree")
	dp := fs.Int("dp", 4, "data-parallel degree")
	width := fs.Int("width", 100, "chart width in columns")
	tracePath := fs.String("trace", "", "also write a Chrome trace-event JSON file (chrome://tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := core.FutureConfig(*h, 2048, 1)
	if err != nil {
		return err
	}
	cfg.Layers = *layers
	nodes := (*tp**dp + 3) / 4
	plan := dist.Plan{
		Model: cfg, TP: *tp, DP: *dp,
		Cluster: hw.MI210Cluster(nodes, 1.0/8),
		Algo:    collective.Ring,
	}
	calc, err := kernels.NewCalculator(hw.MI210)
	if err != nil {
		return err
	}
	timer, err := dist.NewTimer(plan, calc)
	if err != nil {
		return err
	}
	rep, trace, err := dist.RunIteration(plan, timer, dist.ScheduleOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "One training iteration: H=%d L=%d TP=%d DP=%d (makespan %v)\n",
		*h, *layers, *tp, *dp, rep.Makespan)
	fmt.Fprintln(w, "  '#' compute   '=' serialized (TP) comm   '~' overlapped (DP) comm")
	if err := trace.RenderGantt(w, *width); err != nil {
		return err
	}
	_, byLabel := trace.CriticalPath()
	fmt.Fprintln(w, "critical path composition:")
	for _, label := range []string{dist.LabelCompute, dist.LabelTPComm, dist.LabelDPComm} {
		fmt.Fprintf(w, "  %-14s %v (%s of makespan)\n", label, byLabel[label],
			units.Percent(units.Ratio(float64(byLabel[label]), float64(rep.Makespan))))
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "chrome trace written to %s\n", *tracePath)
	}
	return nil
}
