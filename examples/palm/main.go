// palm walks a PaLM-class model through the paper's workflow: estimate
// the tensor-parallel degree its memory footprint demands (Fig 9b), then
// project how the serialized-communication share grows as the TP degree
// is pushed toward that requirement (Fig 10).
package main

import (
	"fmt"
	"log"

	"twocs"
)

func main() {
	entry, err := twocs.LookupZoo("PaLM")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — required TP per the paper's estimator base_TP · p/s.
	ests, err := twocs.EstimateRequiredTP([]twocs.ZooEntry{entry})
	if err != nil {
		log.Fatal(err)
	}
	est := ests[0]
	fmt.Printf("%s (%d): %.0fx Megatron-LM_BERT's size, deployed capacity grew %.1fx\n",
		est.Model, est.Year, est.SizeRatio, est.CapacityScale)
	fmt.Printf("  -> required TP scaling p/s = %.0fx, i.e. TP ~ %.0f devices\n\n",
		est.TPScale, est.RequiredTP)

	// Step 2 — what that TP requirement costs in communication. PaLM's
	// published head count (48) does not divide large power-of-two TP
	// degrees, so project the proportional PaLM-1x stand-in the paper
	// sweeps instead (H=16K).
	a, err := twocs.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := twocs.FutureConfig(16384, 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Layers = entry.Config.Layers

	fmt.Println("Serialized comm share vs TP degree (PaLM-1x-class, H=16K, SL=2K):")
	fmt.Println("  TP    today    2x flop-vs-bw   4x flop-vs-bw")
	for _, tp := range []int{16, 32, 64, 128, 256} {
		row := fmt.Sprintf("  %-4d", tp)
		for _, ratio := range []float64{1, 2, 4} {
			evo := twocs.Today()
			if ratio > 1 {
				evo = twocs.FlopVsBW(ratio)
			}
			p, err := a.SerializedFraction(cfg, tp, evo)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %6.1f%%      ", p.CommFraction()*100)
		}
		fmt.Println(row)
	}
	fmt.Println("\nPushing TP toward the memory-required degree puts communication on")
	fmt.Println("the critical path for an ever larger share of every iteration.")
}
