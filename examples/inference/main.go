// inference applies the Comp-vs-Comm analysis to distributed inference
// (§6.3): a forward-only pass under tensor parallelism still carries two
// serialized all-reduces per layer, and with no backward pass to amortize
// overheads the communication share is higher than in training.
package main

import (
	"fmt"
	"log"

	"twocs"
)

func main() {
	a, err := twocs.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Forward-only (inference) vs full-iteration (training) comm share")
	fmt.Println()
	fmt.Println("  model          TP   training   inference")
	for _, spec := range []struct {
		name  string
		h, sl int
		tp    int
	}{
		{"T-NLG-class", 4096, 1024, 16},
		{"PaLM-1x", 16384, 2048, 64},
		{"PaLM-3x", 65536, 4096, 256},
	} {
		cfg, err := twocs.FutureConfig(spec.h, spec.sl, 1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Layers = 118
		train, err := a.SerializedFraction(cfg, spec.tp, twocs.Today())
		if err != nil {
			log.Fatal(err)
		}
		infer, err := a.ProjectInference(cfg, spec.tp, twocs.Today())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s  %-3d  %7.1f%%   %8.1f%%\n",
			spec.name, spec.tp, train.CommFraction()*100, infer.CommFraction()*100)
	}
	fmt.Println()
	fmt.Println("Distributed inference inherits training's serialized communication,")
	fmt.Println("so the paper's conclusions carry over wherever a model is too large")
	fmt.Println("to serve from a single device.")
}
