// moe extends the analysis to Mixture-of-Experts Transformers (§6.1.1):
// expert parallelism adds serialized all-to-all communication for routing
// tokens to experts, on top of tensor parallelism's all-reduces — so the
// communication share grows even before any hardware evolution.
package main

import (
	"fmt"
	"log"

	"twocs"
)

func main() {
	a, err := twocs.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := twocs.FutureConfig(16384, 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Layers = 118
	const tp = 64

	dense, err := a.SerializedFraction(cfg, tp, twocs.Today())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dense model (H=16K, SL=2K, TP=%d):\n", tp)
	fmt.Printf("  compute %v, all-reduce %v  ->  %.1f%% communication\n\n",
		dense.Compute, dense.SerializedComm, dense.CommFraction()*100)

	fmt.Println("MoE variants (same dense backbone + expert-parallel all-to-all):")
	fmt.Println("  experts  all-to-all   total comm share")
	for _, experts := range []int{4, 8, 16, 32} {
		moe, err := a.ProjectMoE(cfg, tp, experts, twocs.Today())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7d  %-10v  %.1f%%\n", experts, moe.AllToAll, moe.CommFraction()*100)
	}

	fmt.Println()
	fmt.Println("Under 4x flop-vs-bw evolution the same MoE:")
	moe, err := a.ProjectMoE(cfg, tp, 16, twocs.FlopVsBW(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %.1f%% of every iteration is serialized communication.\n", moe.CommFraction()*100)
	fmt.Println("MoE's cheaper compute per token makes the communication share strictly")
	fmt.Println("worse — reinforcing the paper's call for communication-first design.")
}
