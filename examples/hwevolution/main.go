// hwevolution sweeps the flop-vs-bw axis to find the crossover points
// the paper warns about: where serialized communication becomes the
// majority of training time (Fig 12) and where previously hidden
// overlapped communication is exposed (Fig 13, >=100% of compute).
package main

import (
	"fmt"
	"log"

	"twocs"
)

func main() {
	a, err := twocs.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := twocs.FutureConfig(16384, 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Layers = 118

	fmt.Println("Hardware-evolution sweep for a PaLM-1x-class model (H=16K, SL=2K, TP=64)")
	fmt.Println()
	fmt.Println("  flop-vs-bw  serialized comm  overlapped comm (% of compute)")

	serializedCross, overlapCross := 0.0, 0.0
	for _, ratio := range []float64{1, 1.5, 2, 3, 4, 6, 8} {
		evo := twocs.Today()
		if ratio > 1 {
			evo = twocs.FlopVsBW(ratio)
		}
		p, err := a.SerializedFraction(cfg, 64, evo)
		if err != nil {
			log.Fatal(err)
		}
		pct, err := a.OverlappedPercent(cfg, 64, evo)
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if p.CommFraction() >= 0.5 && serializedCross == 0 {
			serializedCross = ratio
			mark += "  <- comm becomes the majority"
		}
		if pct >= 100 && overlapCross == 0 {
			overlapCross = ratio
			mark += "  <- overlapped comm exposed"
		}
		fmt.Printf("  %8.1fx   %13.1f%%  %13.1f%%%s\n",
			ratio, p.CommFraction()*100, pct, mark)
	}

	fmt.Println()
	if serializedCross > 0 {
		fmt.Printf("Serialized communication dominates from ~%.1fx compute-vs-network scaling.\n", serializedCross)
	}
	if overlapCross > 0 {
		fmt.Printf("Gradient all-reduces can no longer hide from ~%.1fx.\n", overlapCross)
	}
	fmt.Println("If networks keep scaling 2-4x slower than compute per generation (the")
	fmt.Println("paper's historical observation), both crossovers arrive within one or")
	fmt.Println("two hardware generations.")
}
