// Quickstart: project the communication share of one future Transformer
// on today's and tomorrow's hardware — the library's core question in
// ~30 lines.
package main

import (
	"fmt"
	"log"

	"twocs"
)

func main() {
	// Profile the BERT baseline on an MI210-class node and calibrate
	// the operator-level model (the paper's one expensive step).
	a, err := twocs.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}

	// A futuristic Transformer: H=64K, SL=4K, B=1 (the paper's
	// PaLM-3x-class model), sliced across 256 devices.
	cfg, err := twocs.FutureConfig(65536, 4096, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Layers = 160

	fmt.Println("Serialized communication share of a training iteration")
	fmt.Printf("model: %v  TP=256\n\n", cfg)
	for _, ratio := range []float64{1, 2, 4} {
		evo := twocs.Today()
		if ratio > 1 {
			evo = twocs.FlopVsBW(ratio)
		}
		p, err := a.SerializedFraction(cfg, 256, evo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  flop-vs-bw %.0fx: compute %v + comm %v  ->  %5.1f%% communication\n",
			ratio, p.Compute, p.SerializedComm, p.CommFraction()*100)
	}
	fmt.Println("\nAs compute outpaces the network, communication takes over the iteration.")
}
