// calibration demonstrates the profile-once / project-anywhere workflow
// the paper's methodology enables: profiling the baseline is the only
// expensive step, so the calibrated operator model is saved to disk and
// any later process — on a machine with no accelerators at all — can
// project hundreds of configurations from the JSON file.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"twocs"
)

func main() {
	dir, err := os.MkdirTemp("", "twocs-calibration")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "calibration.json")

	// Step 1 — the expensive part: profile the baseline and save.
	a, err := twocs.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.OpModel.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled once (%v of accelerator time), saved %d bytes of calibration\n\n",
		a.StrategyLedger.Total(), fi.Size())

	// Step 2 — anywhere else: load and project. No profiling happens
	// past this point.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	m, err := twocs.LoadCalibration(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("projections from the loaded calibration:")
	for _, spec := range []struct {
		h, sl, tp int
	}{
		{4096, 1024, 16}, {16384, 2048, 64}, {65536, 4096, 256},
	} {
		cfg, err := twocs.FutureConfig(spec.h, spec.sl, 1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Layers = 118
		p, err := m.ProjectIteration(cfg, spec.tp, twocs.FlopVsBW(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  H=%-6d TP=%-4d -> %5.1f%% communication at 4x flop-vs-bw\n",
			spec.h, spec.tp, p.CommFraction()*100)
	}
}
