# Developer entry points for the twocs analysis engine. Everything here
# is plain `go` + POSIX sh; CI runs the same steps (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint bench bench-sim bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own analyzer suite plus gofmt.
lint:
	$(GO) run ./cmd/twocslint ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# bench prints the sweep-engine benchmarks (the telemetry layer's
# perf-contract set) without updating the recorded baseline.
bench:
	$(GO) test -run '^$$' -bench 'Sweep|EvolutionGrid' -benchmem .

# bench-sim prints the compiled-schedule benchmarks: the internal/sim
# re-time set plus the evolution grid they accelerate.
bench-sim:
	$(GO) test -run '^$$' -bench 'ProgramReTime|RunRebuild' -benchmem ./internal/sim
	$(GO) test -run '^$$' -bench 'SerializedEvolutionGrid' -benchmem .

# bench-json refreshes BENCH_sweep.json and BENCH_sim.json, the
# recorded baselines the telemetry layer and the compiled-schedule
# layer are held to (see EXPERIMENTS.md "Sweep benchmark baseline" and
# "Compiled-schedule baseline").
bench-json:
	scripts/bench_sweep.sh

clean:
	rm -f twocs twocslint
