# Developer entry points for the twocs analysis engine. Everything here
# is plain `go` + POSIX sh; CI runs the same steps (see
# .github/workflows/ci.yml).

GO ?= go

.PHONY: build test race lint bench bench-sim bench-stream bench-json bench-gate bench-report obs-smoke serve-smoke serve-loadtest shard-smoke shard-bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own analyzer suite plus gofmt.
lint:
	$(GO) run ./cmd/twocslint ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# bench prints the sweep-engine benchmarks (the telemetry layer's
# perf-contract set) without updating the recorded baseline.
bench:
	$(GO) test -run '^$$' -bench 'Sweep|EvolutionGrid' -benchmem .

# bench-sim prints the compiled-schedule benchmarks: the internal/sim
# re-time set plus the evolution grid they accelerate.
bench-sim:
	$(GO) test -run '^$$' -bench 'ProgramReTime|RunRebuild' -benchmem ./internal/sim
	$(GO) test -run '^$$' -bench 'SerializedEvolutionGrid' -benchmem .

# bench-stream prints the streaming-sweep benchmarks: sink encoding,
# online reducers, the ordered chunk engine, and the zero-alloc arena
# re-time step.
bench-stream:
	$(GO) test -run '^$$' -bench 'NDJSONEmit|ParetoEmit|TopKEmit' -benchmem ./internal/stream
	$(GO) test -run '^$$' -bench 'StreamCtx' -benchmem ./internal/parallel
	$(GO) test -run '^$$' -bench 'ArenaReTime' -benchmem ./internal/dist

# bench-json refreshes BENCH_sweep.json, BENCH_sim.json, and
# BENCH_stream.json, the recorded baselines the telemetry layer, the
# compiled-schedule layer, and the streaming sweep are held to (see
# EXPERIMENTS.md). Re-render BENCHMARK.md afterwards.
bench-json:
	scripts/bench_sweep.sh
	scripts/bench_report.sh

# bench-gate re-runs the gated sets and fails on a >10% ns/op or any
# allocs/op regression against the committed baselines — the same
# check CI runs.
bench-gate:
	scripts/bench_gate.sh

# bench-report re-renders BENCHMARK.md from the committed baselines.
bench-report:
	scripts/bench_report.sh

# obs-smoke exercises the live observability plane end to end: a
# streaming sweep with -http/-sample/-progress, scraped mid-run — the
# same check CI runs.
obs-smoke:
	scripts/obs_smoke.sh

# serve-smoke exercises the twocsd analysis daemon end to end: study
# cache miss→hit with byte-identical bodies, a machine-checked NDJSON
# sweep stream whose trailer agrees with /progress, and a graceful
# SIGTERM shutdown — the same check CI runs.
serve-smoke:
	scripts/serve_smoke.sh

# serve-loadtest hammers a local twocsd with identical study requests
# and reports cold-vs-warm latency (p50/p95/p99/max) plus error
# counts; every warm request must be a cache hit (see EXPERIMENTS.md).
serve-loadtest:
	scripts/serve_loadtest.sh

# shard-smoke distributes a sweep over three local twocsd replicas
# with `twocs sweep-fan` and proves the artifact and digests are
# byte-identical to single-node — including after SIGTERMing a replica
# mid-run — the same check CI runs.
shard-smoke:
	scripts/shard_smoke.sh

# shard-bench refreshes BENCH_shard.json: fan-out rows/sec over 1, 2
# and 3 local replicas on a ~1M-row grid. Numbers are per-machine;
# the recorded "cpus" field says whether the fleet had real cores.
shard-bench:
	scripts/shard_bench.sh

clean:
	rm -f twocs twocslint
