// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each printing the rows/series the paper reports (once) and
// timing the underlying analysis. Run with:
//
//	go test -bench=. -benchmem
//
// Paper-vs-measured numbers are catalogued in EXPERIMENTS.md.
package twocs_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"twocs"
	"twocs/internal/core"
	"twocs/internal/dist"
	"twocs/internal/hw"
	"twocs/internal/model"
	"twocs/internal/opmodel"
	"twocs/internal/report"
	"twocs/internal/units"
)

var (
	analyzerOnce sync.Once
	analyzer     *twocs.Analyzer
	analyzerErr  error
)

// sharedAnalyzer builds the standard BERT/MI210 analyzer once per run.
func sharedAnalyzer(b *testing.B) *twocs.Analyzer {
	b.Helper()
	analyzerOnce.Do(func() {
		analyzer, analyzerErr = twocs.NewAnalyzer()
	})
	if analyzerErr != nil {
		b.Fatal(analyzerErr)
	}
	return analyzer
}

var printedOnce sync.Map

// printOnce renders a table the first time a benchmark runs.
func printOnce(b *testing.B, key string, render func()) {
	b.Helper()
	if _, done := printedOnce.LoadOrStore(key, true); !done {
		fmt.Println()
		render()
	}
}

// --- Table 2 -------------------------------------------------------------

func BenchmarkTable2ModelZoo(b *testing.B) {
	printOnce(b, "table2", func() {
		t := report.NewTable("Table 2: NLP model hyperparameters (paper vs computed sizes)",
			"model", "year", "layers", "H", "heads", "SL", "FC", "type",
			"paper (B)", "computed (B)")
		for _, e := range twocs.Zoo() {
			c := e.Config
			t.AddRow(c.Name, fmt.Sprint(e.Year), fmt.Sprint(c.Layers),
				fmt.Sprint(c.Hidden), fmt.Sprint(c.Heads), fmt.Sprint(c.SeqLen),
				fmt.Sprint(c.FCDim), c.Kind.String(),
				report.F(e.PaperSizeB), report.F(c.Params()/1e9))
		}
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range twocs.Zoo() {
			_ = e.Config.Params()
		}
	}
}

// --- Table 3 -------------------------------------------------------------

func BenchmarkTable3SweepSpace(b *testing.B) {
	printOnce(b, "table3", func() {
		t := report.NewTable("Table 3: parameters and setup of models studied",
			"parameter", "values")
		t.AddRow("H", fmt.Sprint(core.Table3Hs()))
		t.AddRow("SL", fmt.Sprint(core.Table3SLs()))
		t.AddRow("B", fmt.Sprint(core.Table3Bs()))
		t.AddRow("TP degree", fmt.Sprint(core.Table3TPs()))
		t.AddRow("DP degree", "any (analysis is DP-degree agnostic)")
		t.AddRow("projected configurations", fmt.Sprint(core.SweepConfigCount()))
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, h := range core.Table3Hs() {
			for _, sl := range core.Table3SLs() {
				cfg, err := core.FutureConfig(h, sl, 1)
				if err != nil {
					b.Fatal(err)
				}
				_ = cfg
				n += len(core.Table3TPs())
			}
		}
		if n != core.SweepConfigCount() {
			b.Fatalf("sweep enumeration mismatch: %d", n)
		}
	}
}

// --- Figure 6 ------------------------------------------------------------

func BenchmarkFigure6MemoryTrends(b *testing.B) {
	capAt := func(year int) (float64, error) {
		c, err := hw.CapacityAt(year)
		return float64(c), err
	}
	printOnce(b, "fig6", func() {
		rows, err := core.MemoryTrend(twocs.Zoo(), capAt)
		if err != nil {
			b.Fatal(err)
		}
		t := report.NewTable("Figure 6: model memory demand (H·SL) vs device capacity, normalized to BERT",
			"model", "year", "demand", "capacity", "gap")
		var gaps []float64
		for _, r := range rows {
			t.AddRow(r.Model, fmt.Sprint(r.Year), report.F(r.NormDemand),
				report.F(r.NormCapacity), report.F(r.NormDemand/r.NormCapacity))
			gaps = append(gaps, r.NormDemand/r.NormCapacity)
		}
		t.Render(os.Stdout)
		fmt.Printf("  gap shape: %s (paper: the gap widens every generation)\n",
			report.Sparkline(gaps))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MemoryTrend(twocs.Zoo(), capAt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7 ------------------------------------------------------------

func BenchmarkFigure7AlgorithmicScaling(b *testing.B) {
	printOnce(b, "fig7", func() {
		rows, err := twocs.AlgorithmicScaling(twocs.Zoo())
		if err != nil {
			b.Fatal(err)
		}
		t := report.NewTable("Figure 7: algorithmic slack (SL·B) and edge ((H+SL)/TP), normalized to BERT",
			"model", "norm slack", "norm edge")
		for _, r := range rows {
			t.AddRow(r.Model, report.F(r.NormSlack), report.F(r.NormEdge))
		}
		t.Render(os.Stdout)
		last := rows[len(rows)-1]
		fmt.Printf("  slack drop %s (paper ~75%%), edge drop %s (paper ~80%%)\n",
			units.Percent(1-last.NormSlack), units.Percent(1-last.NormEdge))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := twocs.AlgorithmicScaling(twocs.Zoo()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9b -----------------------------------------------------------

func BenchmarkFigure9bTPScaling(b *testing.B) {
	printOnce(b, "fig9b", func() {
		ests, err := twocs.EstimateRequiredTP(twocs.Zoo())
		if err != nil {
			b.Fatal(err)
		}
		t := report.NewTable("Figure 9b: required TP scaling p/s since Megatron-LM_BERT (paper: 40-60x for the largest)",
			"model", "year", "p", "s", "p/s", "required TP (x8)")
		for _, e := range ests {
			t.AddRow(e.Model, fmt.Sprint(e.Year), report.F(e.SizeRatio),
				report.F(e.CapacityScale), report.F(e.TPScale), report.F(e.RequiredTP))
		}
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := twocs.EstimateRequiredTP(twocs.Zoo()); err != nil {
			b.Fatal(err)
		}
	}
}

// blueConfigs are the paper's highlighted (H, SL, TP) combinations in
// Figures 10/12: each model at roughly its required TP degree.
var blueConfigs = []struct {
	name      string
	h, sl, tp int
}{
	{"~T-NLG (H=4K)", 4096, 2048, 16},
	{"~PaLM-1x (H=16K)", 16384, 2048, 64},
	{"PaLM-3x (H=64K)", 65536, 4096, 256},
}

func serializedRow(b *testing.B, a *twocs.Analyzer, evo twocs.Evolution) []float64 {
	b.Helper()
	out := make([]float64, 0, len(blueConfigs))
	for _, bc := range blueConfigs {
		cfg, err := twocs.FutureConfig(bc.h, bc.sl, 1)
		if err != nil {
			b.Fatal(err)
		}
		p, err := a.SerializedFraction(cfg, bc.tp, evo)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p.CommFraction())
	}
	return out
}

// --- Figure 10 -----------------------------------------------------------

func BenchmarkFigure10SerializedComm(b *testing.B) {
	a := sharedAnalyzer(b)
	printOnce(b, "fig10", func() {
		t := report.NewTable("Figure 10: serialized comm fraction on today's hardware (paper band: 20-50%)",
			"config", "TP", "comm %")
		fr := serializedRow(b, a, twocs.Today())
		for i, bc := range blueConfigs {
			t.AddRow(bc.name, fmt.Sprint(bc.tp), report.Pct(fr[i]))
		}
		t.Render(os.Stdout)
		pts, err := a.SerializedSweep(core.Table3Hs(), core.Table3SLs(),
			core.Table3TPs(), 1, twocs.Today())
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1.0, 0.0
		for _, p := range pts {
			if p.Fraction < lo {
				lo = p.Fraction
			}
			if p.Fraction > hi {
				hi = p.Fraction
			}
		}
		fmt.Printf("  full %d-point grid range: %s .. %s\n",
			len(pts), units.Percent(lo), units.Percent(hi))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serializedRow(b, a, twocs.Today())
	}
}

// --- Figure 11 -----------------------------------------------------------

func BenchmarkFigure11OverlappedComm(b *testing.B) {
	a := sharedAnalyzer(b)
	hs := []int{1024, 4096, 16384}
	slbs := []int{1024, 4096, 16384}
	printOnce(b, "fig11", func() {
		pts, err := a.OverlappedSweep(hs, slbs, 16, twocs.Today())
		if err != nil {
			b.Fatal(err)
		}
		t := report.NewTable("Figure 11: overlapped comm as % of compute, TP=16 (paper band: 17-140%; falls with SL·B, higher at small H)",
			"H", "SL·B", "overlap %")
		for _, p := range pts {
			t.AddRow(fmt.Sprint(p.H), fmt.Sprint(p.SLB), fmt.Sprintf("%.1f", p.Percent))
		}
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := twocs.FutureConfig(4096, 4096, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.OverlappedPercent(cfg, 16, twocs.Today()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12 -----------------------------------------------------------

func BenchmarkFigure12HardwareEvolutionSerialized(b *testing.B) {
	a := sharedAnalyzer(b)
	printOnce(b, "fig12", func() {
		t := report.NewTable("Figure 12: serialized comm fraction under flop-vs-bw evolution (paper: 20-50% -> 30-65% -> 40-75%)",
			"config", "1x", "2x", "4x")
		r1 := serializedRow(b, a, twocs.Today())
		r2 := serializedRow(b, a, twocs.FlopVsBW(2))
		r4 := serializedRow(b, a, twocs.FlopVsBW(4))
		for i, bc := range blueConfigs {
			t.AddRow(bc.name, report.Pct(r1[i]), report.Pct(r2[i]), report.Pct(r4[i]))
		}
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serializedRow(b, a, twocs.FlopVsBW(4))
	}
}

// --- Figure 13 -----------------------------------------------------------

func BenchmarkFigure13HardwareEvolutionOverlapped(b *testing.B) {
	a := sharedAnalyzer(b)
	grid := []struct{ h, slb int }{{1024, 1024}, {4096, 4096}, {16384, 4096}}
	row := func(evo twocs.Evolution) []float64 {
		out := make([]float64, 0, len(grid))
		for _, g := range grid {
			cfg, err := twocs.FutureConfig(g.h, g.slb, 1)
			if err != nil {
				b.Fatal(err)
			}
			pct, err := a.OverlappedPercent(cfg, 16, evo)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, pct)
		}
		return out
	}
	printOnce(b, "fig13", func() {
		t := report.NewTable("Figure 13: overlapped comm as % of compute under evolution (paper: 50-100% at 2x, 80-210% at 4x; >=100 exposed)",
			"H", "SL·B", "1x", "2x", "4x")
		r1, r2, r4 := row(twocs.Today()), row(twocs.FlopVsBW(2)), row(twocs.FlopVsBW(4))
		for i, g := range grid {
			t.AddRow(fmt.Sprint(g.h), fmt.Sprint(g.slb),
				fmt.Sprintf("%.0f", r1[i]), fmt.Sprintf("%.0f", r2[i]),
				fmt.Sprintf("%.0f", r4[i]))
		}
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row(twocs.FlopVsBW(4))
	}
}

// --- Figure 14 -----------------------------------------------------------

func BenchmarkFigure14CaseStudy(b *testing.B) {
	a := sharedAnalyzer(b)
	cfg, err := twocs.FutureConfig(65536, 4096, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Layers = 16 // fractions are stable beyond ~8 layers
	run := func() []twocs.CaseResult {
		res, err := a.CaseStudy(cfg, 128, 4, twocs.FlopVsBW(4), twocs.Fig14Scenarios())
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	printOnce(b, "fig14", func() {
		t := report.NewTable("Figure 14: end-to-end case study H=64K B=1 SL=4K TP=128 4x (paper: 47% serialized + 9% hidden DP)",
			"scenario", "makespan", "compute %", "serialized %", "DP hidden %", "DP exposed %")
		for _, r := range run() {
			t.AddRow(r.Scenario.Name, r.Makespan.String(), report.Pct(r.ComputeFrac),
				report.Pct(r.SerializedCommFrac), report.Pct(r.HiddenDPFrac),
				report.Pct(r.ExposedDPFrac))
		}
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// --- Figure 15 -----------------------------------------------------------

func validationTimer(b *testing.B, a *twocs.Analyzer) *dist.Timer {
	b.Helper()
	truth, err := a.GroundTruthTimer(a.BaseCfg, a.BaseTP, hw.Identity())
	if err != nil {
		b.Fatal(err)
	}
	return truth
}

func BenchmarkFigure15aGEMMModel(b *testing.B) {
	a := sharedAnalyzer(b)
	truth := validationTimer(b, a)
	run := func() (opmodel.Validation, opmodel.Validation) {
		vs, err := opmodel.ValidateOpSweep(a.OpModel, truth, "fwd.fc.fc1", "gemm-vs-sl", 4, opmodel.SweepSL)
		if err != nil {
			b.Fatal(err)
		}
		vh, err := opmodel.ValidateOpSweep(a.OpModel, truth, "fwd.fc.fc1", "gemm-vs-h", 4, opmodel.SweepH)
		if err != nil {
			b.Fatal(err)
		}
		return vs, vh
	}
	printOnce(b, "fig15a", func() {
		vs, vh := run()
		t := report.NewTable("Figure 15a: GEMM operator-model accuracy (paper: ~15% geomean)",
			"sweep", "geomean err %", "max err %")
		t.AddRow(vs.Name, fmt.Sprintf("%.1f", vs.GeoMeanErr*100), fmt.Sprintf("%.1f", vs.MaxErr*100))
		t.AddRow(vh.Name, fmt.Sprintf("%.1f", vh.GeoMeanErr*100), fmt.Sprintf("%.1f", vh.MaxErr*100))
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkFigure15bLayerNormModel(b *testing.B) {
	a := sharedAnalyzer(b)
	truth := validationTimer(b, a)
	run := func() (opmodel.Validation, opmodel.Validation) {
		vs, err := opmodel.ValidateOpSweep(a.OpModel, truth, "fwd.attn.layernorm", "ln-vs-sl", 4, opmodel.SweepSL)
		if err != nil {
			b.Fatal(err)
		}
		vh, err := opmodel.ValidateOpSweep(a.OpModel, truth, "fwd.attn.layernorm", "ln-vs-h", 4, opmodel.SweepH)
		if err != nil {
			b.Fatal(err)
		}
		return vs, vh
	}
	printOnce(b, "fig15b", func() {
		vs, vh := run()
		t := report.NewTable("Figure 15b: LayerNorm operator-model accuracy (paper: ~7% geomean)",
			"sweep", "geomean err %", "max err %")
		t.AddRow(vs.Name, fmt.Sprintf("%.1f", vs.GeoMeanErr*100), fmt.Sprintf("%.1f", vs.MaxErr*100))
		t.AddRow(vh.Name, fmt.Sprintf("%.1f", vh.GeoMeanErr*100), fmt.Sprintf("%.1f", vh.MaxErr*100))
		t.Render(os.Stdout)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkFigure15cAllReduceModel(b *testing.B) {
	a := sharedAnalyzer(b)
	truth := validationTimer(b, a)
	sizes := []units.Bytes{
		units.Bytes(512 * units.KiB), units.Bytes(2 * units.MiB),
		units.Bytes(8 * units.MiB), units.Bytes(32 * units.MiB),
		units.Bytes(128 * units.MiB), units.Bytes(512 * units.MiB),
	}
	run := func() opmodel.Validation {
		v, err := opmodel.ValidateAllReduce(a.OpModel, truth, a.BaseTP, sizes)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}
	printOnce(b, "fig15c", func() {
		v := run()
		t := report.NewTable("Figure 15c: all-reduce operator-model accuracy (paper: ~11% geomean)",
			"size", "measured", "projected", "err %")
		for _, p := range v.Points {
			t.AddRow(units.Bytes(p.X).String(), p.Measured.String(), p.Projected.String(),
				fmt.Sprintf("%.1f", 100*relErr(float64(p.Projected), float64(p.Measured))))
		}
		t.Render(os.Stdout)
		fmt.Printf("  geomean error: %.1f%% (paper ~11%%)\n", v.GeoMeanErr*100)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// --- Sweep engine ---------------------------------------------------------
//
// The grid sweeps run on the internal/parallel worker pool with memoized
// timer substrates and operator graphs. The Sequential/Parallel pairs
// measure the same full Table 3 grids at Workers=1 and Workers=4; their
// outputs are byte-identical (asserted by the equivalence tests in
// internal/core), so the pairs differ only in scheduling.

// sweepAnalyzer builds a fresh analyzer so per-benchmark worker settings
// and ledger growth do not leak into the shared one.
func sweepAnalyzer(b *testing.B, workers int) *twocs.Analyzer {
	b.Helper()
	a, err := twocs.NewAnalyzer()
	if err != nil {
		b.Fatal(err)
	}
	a.Workers = workers
	return a
}

func benchSerializedSweep(b *testing.B, workers int) {
	a := sweepAnalyzer(b, workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SerializedSweep(core.Table3Hs(), core.Table3SLs(),
			core.Table3TPs(), 1, twocs.Today()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialSerializedSweep(b *testing.B) { benchSerializedSweep(b, 1) }
func BenchmarkParallelSerializedSweep(b *testing.B)   { benchSerializedSweep(b, 4) }

func benchOverlappedSweep(b *testing.B, workers int) {
	a := sweepAnalyzer(b, workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.OverlappedSweep(core.Table3Hs(), core.Table3SLs(),
			16, twocs.Today()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialOverlappedSweep(b *testing.B) { benchOverlappedSweep(b, 1) }
func BenchmarkParallelOverlappedSweep(b *testing.B)   { benchOverlappedSweep(b, 4) }

func BenchmarkSerializedEvolutionGrid(b *testing.B) {
	a := sweepAnalyzer(b, 0)
	evos := []twocs.Evolution{twocs.Today(), twocs.FlopVsBW(2), twocs.FlopVsBW(4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SerializedEvolutionGrid(core.Table3Hs(), core.Table3SLs(),
			core.Table3TPs(), 1, evos); err != nil {
			b.Fatal(err)
		}
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// --- §4.3.8 profiling speedup ---------------------------------------------

func BenchmarkProfilingSpeedup(b *testing.B) {
	run := func() (float64, float64) {
		e, err := model.LookupZoo("BERT")
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.NewAnalyzer(hw.MI210Cluster(1, 0), e.Config, 4)
		if err != nil {
			b.Fatal(err)
		}
		var exhaustive units.Seconds
		for _, h := range core.Table3Hs() {
			for _, sl := range core.Table3SLs() {
				cfg, err := core.FutureConfig(h, sl, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Layers = 96
				for _, tp := range core.Table3TPs() {
					if err := cfg.ValidateTP(tp); err != nil {
						continue
					}
					c, err := a.ExhaustiveIterationCost(cfg, tp)
					if err != nil {
						b.Fatal(err)
					}
					exhaustive += c
				}
			}
		}
		if _, err := a.OverlappedSweep(core.Table3Hs(), core.Table3SLs(), 16, hw.Identity()); err != nil {
			b.Fatal(err)
		}
		speedup := float64(exhaustive) / float64(a.StrategyLedger.Total())

		var fwd, total units.Seconds
		for _, r := range a.Baseline.Records {
			total += r.Time
			if r.Op.Phase == model.Forward {
				fwd += r.Time
			}
		}
		return speedup, float64(total) / float64(total-fwd)
	}
	printOnce(b, "speedup", func() {
		s, roi := run()
		fmt.Printf("Profiling-cost comparison (§4.3.8): strategy speedup %.0fx (paper ~2100x), ROI speedup %.2fx (paper ~1.5x)\n", s, roi)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
