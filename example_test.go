package twocs_test

import (
	"fmt"

	"twocs"
)

// The zoo carries the paper's Table 2 models.
func ExampleZoo() {
	for _, e := range twocs.Zoo() {
		fmt.Printf("%s (%d)\n", e.Config.Name, e.Year)
	}
	// Output:
	// BERT (2018)
	// T5 (2019)
	// GPT-2 (2019)
	// Megatron-LM (2019)
	// T-NLG (2020)
	// GPT-3 (2020)
	// MT-NLG (2021)
	// PaLM (2022)
}

// Compute's slack to hide overlapped communication is O(SL·B) (Eq 9).
func ExampleSlackAdvantage() {
	bert, _ := twocs.LookupZoo("BERT")
	palm, _ := twocs.LookupZoo("PaLM")
	fmt.Println(twocs.SlackAdvantage(bert.Config))
	fmt.Println(twocs.SlackAdvantage(palm.Config))
	// Output:
	// 8192
	// 2048
}

// Compute's Amdahl's-law edge over serialized communication is
// O((H+SL)/TP) (Eq 6).
func ExampleEdgeComplexity() {
	bert, _ := twocs.LookupZoo("BERT")
	edge, _ := twocs.EdgeComplexity(bert.Config, 4)
	fmt.Println(edge)
	// Output:
	// 384
}

// AlgorithmicScaling reproduces Figure 7: PaLM's slack is 25% of BERT's
// (a ~75% drop) and its edge ~21% (a ~80% drop).
func ExampleAlgorithmicScaling() {
	rows, _ := twocs.AlgorithmicScaling(twocs.Zoo())
	last := rows[len(rows)-1]
	fmt.Printf("%s: slack %.2f, edge %.3f\n", last.Model, last.NormSlack, last.NormEdge)
	// Output:
	// PaLM: slack 0.25, edge 0.208
}

// FutureConfig builds the proportional future Transformers the sweeps use.
func ExampleFutureConfig() {
	cfg, _ := twocs.FutureConfig(65536, 4096, 1)
	fmt.Println(cfg.Hidden, cfg.FCDim, cfg.SeqLen, cfg.Batch)
	// Output:
	// 65536 262144 4096 1
}

// Hardware evolution scenarios scale compute relative to the network.
func ExampleFlopVsBW() {
	evo := twocs.FlopVsBW(4)
	fmt.Println(evo.FlopVsBW())
	// Output:
	// 4
}
