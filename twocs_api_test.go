// Tests for the public facade: every re-exported entry point must be
// usable exactly as the README shows.
package twocs_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"twocs"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	a := sharedFacadeAnalyzer(t)
	cfg, err := twocs.FutureConfig(16384, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.SerializedFraction(cfg, 64, twocs.FlopVsBW(4))
	if err != nil {
		t.Fatal(err)
	}
	if f := p.CommFraction(); f <= 0 || f >= 1 {
		t.Errorf("comm fraction = %v", f)
	}
}

var facadeAnalyzer *twocs.Analyzer

func sharedFacadeAnalyzer(t *testing.T) *twocs.Analyzer {
	t.Helper()
	if facadeAnalyzer == nil {
		a, err := twocs.NewAnalyzer()
		if err != nil {
			t.Fatal(err)
		}
		facadeAnalyzer = a
	}
	return facadeAnalyzer
}

func TestFacadeZooAndLookup(t *testing.T) {
	if len(twocs.Zoo()) != 8 {
		t.Errorf("zoo size = %d", len(twocs.Zoo()))
	}
	if _, err := twocs.LookupZoo("GPT-3"); err != nil {
		t.Error(err)
	}
	if _, err := twocs.LookupZoo("nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if len(twocs.FutureModels()) != 4 {
		t.Error("future models missing")
	}
}

func TestFacadeEvolutions(t *testing.T) {
	if twocs.Today().FlopVsBW() != 1 {
		t.Error("Today should be 1x")
	}
	if twocs.FlopVsBW(4).FlopVsBW() != 4 {
		t.Error("FlopVsBW(4) should be 4x")
	}
}

func TestFacadeAlgorithmicHelpers(t *testing.T) {
	e, err := twocs.LookupZoo("BERT")
	if err != nil {
		t.Fatal(err)
	}
	if got := twocs.SlackAdvantage(e.Config); got != 512*16 {
		t.Errorf("slack = %v", got)
	}
	edge, err := twocs.EdgeComplexity(e.Config, 4)
	if err != nil {
		t.Fatal(err)
	}
	if edge != (1024+512)/4.0 {
		t.Errorf("edge = %v", edge)
	}
	rows, err := twocs.AlgorithmicScaling(twocs.Zoo())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestFacadeRequiredTP(t *testing.T) {
	ests, err := twocs.EstimateRequiredTP(twocs.Zoo())
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 8 {
		t.Errorf("estimates = %d", len(ests))
	}
}

func TestFacadeCustomCluster(t *testing.T) {
	e, err := twocs.LookupZoo("BERT")
	if err != nil {
		t.Fatal(err)
	}
	a, err := twocs.NewAnalyzerOn(twocs.MI210Cluster(2, 1.0/8), e.Config, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := twocs.FutureConfig(4096, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SerializedFraction(cfg, 16, twocs.Today()); err != nil {
		t.Error(err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	a := sharedFacadeAnalyzer(t)
	cfg, err := twocs.FutureConfig(8192, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Layers = 24
	moe, err := a.ProjectMoE(cfg, 16, 8, twocs.Today())
	if err != nil {
		t.Fatal(err)
	}
	if moe.AllToAll <= 0 {
		t.Error("MoE all-to-all missing")
	}
	inf, err := a.ProjectInference(cfg, 16, twocs.Today())
	if err != nil {
		t.Fatal(err)
	}
	train, err := a.SerializedFraction(cfg, 16, twocs.Today())
	if err != nil {
		t.Fatal(err)
	}
	if inf.CommFraction() <= train.CommFraction() {
		t.Errorf("inference fraction %v should exceed training %v (no backward GEMMs to amortize)",
			inf.CommFraction(), train.CommFraction())
	}
}

func TestFacadeCaseStudyScenarios(t *testing.T) {
	if len(twocs.Fig14Scenarios()) != 3 {
		t.Error("want 3 Fig14 scenarios")
	}
}

func TestFacadeStreaming(t *testing.T) {
	a := sharedFacadeAnalyzer(t)
	var buf bytes.Buffer
	top, err := twocs.NewTopK(3)
	if err != nil {
		t.Fatal(err)
	}
	pareto := twocs.NewPareto()
	marg := twocs.NewMarginals()
	sink := twocs.MultiSink(twocs.NewNDJSON(&buf), top, pareto, marg)
	err = a.StreamSweepCtx(context.Background(),
		[]int{1024, 4096}, []int{1024, 2048}, []int{4, 16}, 1, twocs.FlopVsBW(4), sink)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8+1 {
		t.Fatalf("streamed %d lines, want 8 rows + trailer", len(lines))
	}
	if !strings.Contains(lines[len(lines)-1], `"trailer":true`) ||
		!strings.Contains(lines[len(lines)-1], `"complete":true`) {
		t.Fatalf("bad trailer line: %s", lines[len(lines)-1])
	}
	if len(top.Best()) != 3 || pareto.Size() == 0 || len(marg.Axes()) == 0 {
		t.Fatal("reducers saw no rows")
	}
}
